//! Artifact exporters: JSONL event dumps, Chrome `trace_event` JSON and
//! per-stage latency attribution.

use crate::stage::Stage;
use crate::tracer::{PacketTracer, StageEvent};
use serde::Value;

/// The interval between two consecutive lifecycle events of one packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Packet id the interval belongs to.
    pub packet: u64,
    /// Stage the interval starts at.
    pub from: Stage,
    /// Stage the interval ends at (this stage names the span).
    pub to: Stage,
    /// Node of the ending event.
    pub node: u32,
    /// Interval start, nanoseconds since t = 0.
    pub start_ns: f64,
    /// Interval length in nanoseconds.
    pub ns: f64,
}

/// Turn a packet's event stream into consecutive spans. Events must belong
/// to one packet (as [`PacketTracer::for_packet`] returns them); they are
/// sorted by timestamp first, because layers record some stages at their
/// *completion* time, which can lag the recording call order. The spans
/// tile the packet's life exactly, so their `ns` sum equals last-event time
/// minus first-event time.
pub fn spans(events: &[StageEvent]) -> Vec<Span> {
    let mut events = events.to_vec();
    events.sort_by_key(|e| e.t);
    events
        .windows(2)
        .map(|w| Span {
            packet: w[1].packet,
            from: w[0].stage,
            to: w[1].stage,
            node: w[1].node,
            start_ns: w[0].t.as_ns_f64(),
            ns: w[1].t.saturating_since(w[0].t).as_ns_f64(),
        })
        .collect()
}

/// The four stages a half-RTT decomposes into (paper Figs. 7 and 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Attribution {
    /// Host software and NIC send-side work before the first byte hits the
    /// wire.
    Injection,
    /// Time on links and in switches: routing, channel arbitration,
    /// STOP/GO blocking and flit transmission.
    WormholeTransit,
    /// In-transit-buffer firmware work at intermediate hosts: Early-Recv
    /// inspection, ITB detection, send-DMA reprogramming and re-injection
    /// start (the paper's ~1.3 µs/hop).
    ItbHop,
    /// Receive-side firmware and host delivery at the final destination.
    Delivery,
}

impl Attribution {
    /// All categories, in report order.
    pub const ALL: [Attribution; 4] = [
        Attribution::Injection,
        Attribution::WormholeTransit,
        Attribution::ItbHop,
        Attribution::Delivery,
    ];

    /// Stable report label.
    pub fn as_str(self) -> &'static str {
        match self {
            Attribution::Injection => "injection",
            Attribution::WormholeTransit => "wormhole_transit",
            Attribution::ItbHop => "itb_hop",
            Attribution::Delivery => "delivery",
        }
    }
}

impl std::fmt::Display for Attribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which category a span belongs to. `idx` is the span's position within
/// its packet's span list — needed because the ITB firmware raises
/// Early-Recv at the final destination too: an interval ending at
/// `mcp.early_recv` counts as [`Attribution::ItbHop`] only when the next
/// event is `mcp.itb_detect`, otherwise it is receive-side
/// [`Attribution::Delivery`].
fn categorize(all: &[Span], idx: usize) -> Attribution {
    match all[idx].to {
        Stage::HostInject | Stage::NetInject => Attribution::Injection,
        Stage::NetLinkAcquire
        | Stage::NetLinkBlock
        | Stage::NetRoute
        | Stage::NetHead
        | Stage::NetTail => Attribution::WormholeTransit,
        Stage::McpEarlyRecv => match all.get(idx + 1) {
            Some(next) if next.to == Stage::McpItbDetect => Attribution::ItbHop,
            _ => Attribution::Delivery,
        },
        Stage::McpItbDetect | Stage::McpItbForward | Stage::NetReinject => Attribution::ItbHop,
        Stage::McpRecvFinish | Stage::NicDeliver | Stage::HostDeliver => Attribution::Delivery,
    }
}

/// Decompose one packet's spans into per-category nanosecond totals.
///
/// Always returns all four categories in [`Attribution::ALL`] order (zeros
/// included), so the totals sum to the packet's end-to-end latency.
pub fn attribute(packet_spans: &[Span]) -> Vec<(Attribution, f64)> {
    let mut totals = [0.0f64; 4];
    for (i, s) in packet_spans.iter().enumerate() {
        let cat = categorize(packet_spans, i);
        let slot = Attribution::ALL
            .iter()
            .position(|&a| a == cat)
            // detlint::allow(S001, every event category is listed in ALL)
            .expect("category in ALL");
        totals[slot] += s.ns;
    }
    Attribution::ALL.into_iter().zip(totals).collect()
}

/// One JSON object per line per event:
/// `{"packet":7,"stage":"mcp.itb_detect","node":2,"t_ns":1234.5}`.
pub fn to_jsonl(tracer: &PacketTracer) -> String {
    let mut out = String::new();
    for e in tracer.events() {
        let v = Value::Object(vec![
            ("packet".to_string(), Value::UInt(e.packet)),
            (
                "stage".to_string(),
                Value::Str(e.stage.as_str().to_string()),
            ),
            ("node".to_string(), Value::UInt(u64::from(e.node))),
            ("t_ns".to_string(), Value::Float(e.t.as_ns_f64())),
        ]);
        // detlint::allow(S001, event records serialize by construction)
        out.push_str(&serde_json::to_string(&v).expect("jsonl event serializes"));
        out.push('\n');
    }
    out
}

/// Render the trace in Chrome `trace_event` JSON (open in Perfetto or
/// `chrome://tracing`). Each packet becomes one "thread" (tid = packet id);
/// each inter-event interval becomes one complete ("X") slice named after
/// the stage it ends at. Timestamps and durations are microseconds, per the
/// format spec.
pub fn to_chrome_trace(tracer: &PacketTracer) -> String {
    let mut events = Vec::new();
    for packet in tracer.packets() {
        events.push(Value::Object(vec![
            ("name".to_string(), Value::Str("thread_name".to_string())),
            ("ph".to_string(), Value::Str("M".to_string())),
            ("pid".to_string(), Value::UInt(0)),
            ("tid".to_string(), Value::UInt(packet)),
            (
                "args".to_string(),
                Value::Object(vec![(
                    "name".to_string(),
                    Value::Str(format!("packet {packet}")),
                )]),
            ),
        ]));
        for s in spans(&tracer.for_packet(packet)) {
            events.push(Value::Object(vec![
                ("name".to_string(), Value::Str(s.to.as_str().to_string())),
                ("cat".to_string(), Value::Str("packet".to_string())),
                ("ph".to_string(), Value::Str("X".to_string())),
                ("ts".to_string(), Value::Float(s.start_ns / 1e3)),
                ("dur".to_string(), Value::Float(s.ns / 1e3)),
                ("pid".to_string(), Value::UInt(0)),
                ("tid".to_string(), Value::UInt(packet)),
                (
                    "args".to_string(),
                    Value::Object(vec![("node".to_string(), Value::UInt(u64::from(s.node)))]),
                ),
            ]));
        }
    }
    let doc = Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(events)),
        ("displayTimeUnit".to_string(), Value::Str("ns".to_string())),
    ]);
    // detlint::allow(S001, the chrome trace document serializes by construction)
    serde_json::to_string_pretty(&doc).expect("chrome trace serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use itb_sim::SimTime;

    /// A hand-built source → ITB host → destination lifecycle.
    fn itb_path_tracer() -> PacketTracer {
        let mut t = PacketTracer::new(64);
        t.enable();
        let ev: [(Stage, u32, u64); 12] = [
            (Stage::HostInject, 0, 0),
            (Stage::NetInject, 0, 300),
            (Stage::NetLinkAcquire, 0, 350),
            (Stage::NetHead, 2, 600),
            (Stage::NetTail, 2, 900),
            (Stage::McpEarlyRecv, 2, 1172), // followed by detect → ItbHop
            (Stage::McpItbDetect, 2, 1200),
            (Stage::McpItbForward, 2, 1927),
            (Stage::NetReinject, 2, 2157),
            (Stage::NetTail, 5, 2800),
            (Stage::McpEarlyRecv, 5, 3072), // no detect follows → Delivery
            (Stage::HostDeliver, 5, 3500),
        ];
        for (stage, node, ns) in ev {
            t.record(42, stage, node, SimTime::from_ns(ns));
        }
        t
    }

    #[test]
    fn spans_tile_the_packet_lifetime() {
        let t = itb_path_tracer();
        let sp = spans(&t.for_packet(42));
        assert_eq!(sp.len(), 11);
        let total: f64 = sp.iter().map(|s| s.ns).sum();
        assert!((total - 3500.0).abs() < 1e-9, "spans must sum to e2e");
        assert_eq!(sp[0].from, Stage::HostInject);
        assert_eq!(sp[0].to, Stage::NetInject);
        assert!((sp[0].ns - 300.0).abs() < 1e-9);
    }

    #[test]
    fn attribution_sums_to_end_to_end_and_groups_itb_work() {
        let t = itb_path_tracer();
        let sp = spans(&t.for_packet(42));
        let attr = attribute(&sp);
        assert_eq!(attr.len(), 4);
        let total: f64 = attr.iter().map(|&(_, ns)| ns).sum();
        assert!((total - 3500.0).abs() < 1e-9);
        let get = |cat: Attribution| {
            attr.iter()
                .find(|&&(a, _)| a == cat)
                .map(|&(_, ns)| ns)
                .unwrap()
        };
        // ItbHop = tail→early_recv (272) + early_recv→detect (28)
        //        + detect→forward (727) + forward→reinject (230) = 1257.
        assert!((get(Attribution::ItbHop) - 1257.0).abs() < 1e-9);
        // Delivery = dst tail→early_recv (272) + early_recv→deliver (428).
        assert!((get(Attribution::Delivery) - 700.0).abs() < 1e-9);
        assert!((get(Attribution::Injection) - 300.0).abs() < 1e-9);
    }

    #[test]
    fn early_recv_without_detect_is_delivery() {
        // A direct (no-ITB) path: early_recv leads straight to recv_finish.
        let mut t = PacketTracer::new(16);
        t.enable();
        for (stage, ns) in [
            (Stage::NetTail, 100u64),
            (Stage::McpEarlyRecv, 372),
            (Stage::McpRecvFinish, 800),
        ] {
            t.record(1, stage, 4, SimTime::from_ns(ns));
        }
        let attr = attribute(&spans(&t.for_packet(1)));
        let itb: f64 = attr
            .iter()
            .filter(|&&(a, _)| a == Attribution::ItbHop)
            .map(|&(_, ns)| ns)
            .sum();
        assert_eq!(itb, 0.0, "no ITB work on a direct path");
    }

    #[test]
    fn jsonl_has_one_line_per_event() {
        let t = itb_path_tracer();
        let out = to_jsonl(&t);
        assert_eq!(out.lines().count(), 12);
        let first = out.lines().next().unwrap();
        assert!(first.contains("\"stage\""));
        assert!(first.contains("host.inject"));
        assert!(first.contains("\"packet\""));
    }

    #[test]
    fn chrome_trace_emits_slices_and_thread_names() {
        let t = itb_path_tracer();
        let out = to_chrome_trace(&t);
        assert!(out.contains("\"traceEvents\""));
        assert!(out.contains("\"thread_name\""));
        assert!(out.contains("\"mcp.itb_forward\""));
        // One metadata record + 11 slices.
        assert_eq!(out.matches("\"ph\"").count(), 12);
        // ts/dur are microseconds: the 300 ns injection span is 0.3 µs.
        assert!(out.contains("0.3"));
    }

    #[test]
    fn empty_tracer_exports_are_valid() {
        let t = PacketTracer::new(4);
        assert_eq!(to_jsonl(&t), "");
        let chrome = to_chrome_trace(&t);
        assert!(chrome.contains("\"traceEvents\": []"));
    }
}

//! Artifact exporters: JSONL event dumps, Chrome `trace_event` JSON (packet
//! lifecycles and per-shard PDES window gantts) and per-stage latency
//! attribution.

use crate::stage::Stage;
use crate::tracer::{PacketTracer, StageEvent};
use itb_sim::par::WindowRecord;
use serde::Value;
use std::io;

/// The interval between two consecutive lifecycle events of one packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Packet id the interval belongs to.
    pub packet: u64,
    /// Stage the interval starts at.
    pub from: Stage,
    /// Stage the interval ends at (this stage names the span).
    pub to: Stage,
    /// Node of the ending event.
    pub node: u32,
    /// Interval start, nanoseconds since t = 0.
    pub start_ns: f64,
    /// Interval length in nanoseconds.
    pub ns: f64,
}

/// Turn a packet's event stream into consecutive spans. Events must belong
/// to one packet (as [`PacketTracer::for_packet`] returns them); they are
/// sorted by timestamp first, because layers record some stages at their
/// *completion* time, which can lag the recording call order. The spans
/// tile the packet's life exactly, so their `ns` sum equals last-event time
/// minus first-event time.
pub fn spans(events: &[StageEvent]) -> Vec<Span> {
    let mut events = events.to_vec();
    events.sort_by_key(|e| e.t);
    events
        .windows(2)
        .map(|w| Span {
            packet: w[1].packet,
            from: w[0].stage,
            to: w[1].stage,
            node: w[1].node,
            start_ns: w[0].t.as_ns_f64(),
            ns: w[1].t.saturating_since(w[0].t).as_ns_f64(),
        })
        .collect()
}

/// The four stages a half-RTT decomposes into (paper Figs. 7 and 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Attribution {
    /// Host software and NIC send-side work before the first byte hits the
    /// wire.
    Injection,
    /// Time on links and in switches: routing, channel arbitration,
    /// STOP/GO blocking and flit transmission.
    WormholeTransit,
    /// In-transit-buffer firmware work at intermediate hosts: Early-Recv
    /// inspection, ITB detection, send-DMA reprogramming and re-injection
    /// start (the paper's ~1.3 µs/hop).
    ItbHop,
    /// Receive-side firmware and host delivery at the final destination.
    Delivery,
}

impl Attribution {
    /// All categories, in report order.
    pub const ALL: [Attribution; 4] = [
        Attribution::Injection,
        Attribution::WormholeTransit,
        Attribution::ItbHop,
        Attribution::Delivery,
    ];

    /// Stable report label.
    pub fn as_str(self) -> &'static str {
        match self {
            Attribution::Injection => "injection",
            Attribution::WormholeTransit => "wormhole_transit",
            Attribution::ItbHop => "itb_hop",
            Attribution::Delivery => "delivery",
        }
    }
}

impl std::fmt::Display for Attribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which category a span belongs to. `idx` is the span's position within
/// its packet's span list — needed because the ITB firmware raises
/// Early-Recv at the final destination too: an interval ending at
/// `mcp.early_recv` counts as [`Attribution::ItbHop`] only when the next
/// event is `mcp.itb_detect`, otherwise it is receive-side
/// [`Attribution::Delivery`].
fn categorize(all: &[Span], idx: usize) -> Attribution {
    match all[idx].to {
        Stage::HostInject | Stage::NetInject => Attribution::Injection,
        Stage::NetLinkAcquire
        | Stage::NetLinkBlock
        | Stage::NetRoute
        | Stage::NetHead
        | Stage::NetTail => Attribution::WormholeTransit,
        Stage::McpEarlyRecv => match all.get(idx + 1) {
            Some(next) if next.to == Stage::McpItbDetect => Attribution::ItbHop,
            _ => Attribution::Delivery,
        },
        Stage::McpItbDetect | Stage::McpItbForward | Stage::NetReinject => Attribution::ItbHop,
        Stage::McpRecvFinish | Stage::NicDeliver | Stage::HostDeliver => Attribution::Delivery,
    }
}

/// Decompose one packet's spans into per-category nanosecond totals.
///
/// Always returns all four categories in [`Attribution::ALL`] order (zeros
/// included), so the totals sum to the packet's end-to-end latency.
pub fn attribute(packet_spans: &[Span]) -> Vec<(Attribution, f64)> {
    let mut totals = [0.0f64; 4];
    for (i, s) in packet_spans.iter().enumerate() {
        let cat = categorize(packet_spans, i);
        let slot = Attribution::ALL
            .iter()
            .position(|&a| a == cat)
            // detlint::allow(S001, every event category is listed in ALL)
            .expect("category in ALL");
        totals[slot] += s.ns;
    }
    Attribution::ALL.into_iter().zip(totals).collect()
}

/// Stream the trace as JSONL — one JSON object per line per event:
/// `{"packet":7,"stage":"mcp.itb_detect","node":2,"t_ns":1234.5}`.
/// Each line is one small write, so callers writing to a file wrap the sink
/// in a `BufWriter` (see `itb_bench`'s `dump_stream`).
pub fn write_jsonl<W: io::Write>(tracer: &PacketTracer, w: &mut W) -> io::Result<()> {
    for e in tracer.events() {
        let v = Value::Object(vec![
            ("packet".to_string(), Value::UInt(e.packet)),
            (
                "stage".to_string(),
                Value::Str(e.stage.as_str().to_string()),
            ),
            ("node".to_string(), Value::UInt(u64::from(e.node))),
            ("t_ns".to_string(), Value::Float(e.t.as_ns_f64())),
        ]);
        // detlint::allow(S001, event records serialize by construction)
        let line = serde_json::to_string(&v).expect("jsonl event serializes");
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
    }
    Ok(())
}

/// The JSONL trace as a string (delegates to [`write_jsonl`]).
pub fn to_jsonl(tracer: &PacketTracer) -> String {
    let mut buf = Vec::new();
    // detlint::allow(S001, writing into a Vec cannot fail)
    write_jsonl(tracer, &mut buf).expect("Vec sink never errors");
    // detlint::allow(S001, JSON output is ASCII)
    String::from_utf8(buf).expect("JSONL is valid UTF-8")
}

/// Render the trace in Chrome `trace_event` JSON (open in Perfetto or
/// `chrome://tracing`). Each packet becomes one "thread" (tid = packet id);
/// each inter-event interval becomes one complete ("X") slice named after
/// the stage it ends at. Timestamps and durations are microseconds, per the
/// format spec.
pub fn to_chrome_trace(tracer: &PacketTracer) -> String {
    let mut events = Vec::new();
    for packet in tracer.packets() {
        events.push(Value::Object(vec![
            ("name".to_string(), Value::Str("thread_name".to_string())),
            ("ph".to_string(), Value::Str("M".to_string())),
            ("pid".to_string(), Value::UInt(0)),
            ("tid".to_string(), Value::UInt(packet)),
            (
                "args".to_string(),
                Value::Object(vec![(
                    "name".to_string(),
                    Value::Str(format!("packet {packet}")),
                )]),
            ),
        ]));
        for s in spans(&tracer.for_packet(packet)) {
            events.push(Value::Object(vec![
                ("name".to_string(), Value::Str(s.to.as_str().to_string())),
                ("cat".to_string(), Value::Str("packet".to_string())),
                ("ph".to_string(), Value::Str("X".to_string())),
                ("ts".to_string(), Value::Float(s.start_ns / 1e3)),
                ("dur".to_string(), Value::Float(s.ns / 1e3)),
                ("pid".to_string(), Value::UInt(0)),
                ("tid".to_string(), Value::UInt(packet)),
                (
                    "args".to_string(),
                    Value::Object(vec![("node".to_string(), Value::UInt(u64::from(s.node)))]),
                ),
            ]));
        }
    }
    let doc = Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(events)),
        ("displayTimeUnit".to_string(), Value::Str("ns".to_string())),
    ]);
    // detlint::allow(S001, the chrome trace document serializes by construction)
    serde_json::to_string_pretty(&doc).expect("chrome trace serializes")
}

/// Stream the packet-lifecycle Chrome trace into `w` (delegates to
/// [`to_chrome_trace`]; wrap file sinks in a `BufWriter`).
pub fn write_chrome_trace<W: io::Write>(tracer: &PacketTracer, w: &mut W) -> io::Result<()> {
    w.write_all(to_chrome_trace(tracer).as_bytes())?;
    w.write_all(b"\n")
}

/// Run-level facts recorded as Chrome-trace metadata so a window-gantt trace
/// file is self-describing without its JSON sidecar.
#[derive(Debug, Clone)]
pub struct ParTraceMeta {
    /// Cross-shard same-picosecond rank ties over the whole run (0 proves
    /// byte-identity with sequential execution).
    pub cross_shard_ties: u64,
    /// Events dispatched per shard, indexed by shard id.
    pub per_shard_events: Vec<u64>,
    /// `std::thread::available_parallelism()` observed at run time.
    pub available_parallelism: u64,
    /// Worker threads the run was configured with.
    pub threads: u32,
}

/// Render per-(shard, window) PDES profiler records as a Chrome `trace_event`
/// window-utilization gantt: one "thread" lane per shard (tid = shard id),
/// one complete ("X") slice per epoch window spanning `[g, limit)` in sim
/// time, with event/envelope/tie counts and barrier wall-ns in `args`.
/// `meta` lands in a single `itb_par_meta` metadata event.
pub fn par_windows_chrome_trace(records: &[WindowRecord], meta: &ParTraceMeta) -> String {
    let mut events = Vec::new();
    events.push(Value::Object(vec![
        ("name".to_string(), Value::Str("itb_par_meta".to_string())),
        ("ph".to_string(), Value::Str("M".to_string())),
        ("pid".to_string(), Value::UInt(0)),
        ("tid".to_string(), Value::UInt(0)),
        (
            "args".to_string(),
            Value::Object(vec![
                (
                    "cross_shard_ties".to_string(),
                    Value::UInt(meta.cross_shard_ties),
                ),
                (
                    "per_shard_events".to_string(),
                    Value::Array(
                        meta.per_shard_events
                            .iter()
                            .map(|&e| Value::UInt(e))
                            .collect(),
                    ),
                ),
                (
                    "available_parallelism".to_string(),
                    Value::UInt(meta.available_parallelism),
                ),
                ("threads".to_string(), Value::UInt(u64::from(meta.threads))),
            ]),
        ),
    ]));
    let mut named = std::collections::BTreeSet::new();
    for r in records {
        if named.insert(r.shard) {
            events.push(Value::Object(vec![
                ("name".to_string(), Value::Str("thread_name".to_string())),
                ("ph".to_string(), Value::Str("M".to_string())),
                ("pid".to_string(), Value::UInt(0)),
                ("tid".to_string(), Value::UInt(u64::from(r.shard))),
                (
                    "args".to_string(),
                    Value::Object(vec![(
                        "name".to_string(),
                        Value::Str(format!("shard {}", r.shard)),
                    )]),
                ),
            ]));
        }
        // Chrome trace ts/dur are microseconds; window bounds are sim ps.
        #[allow(clippy::cast_precision_loss)]
        let (ts_us, dur_us) = (
            r.g_ps as f64 / 1e6,
            r.limit_ps.saturating_sub(r.g_ps) as f64 / 1e6,
        );
        events.push(Value::Object(vec![
            (
                "name".to_string(),
                Value::Str(format!("window {}", r.window)),
            ),
            ("cat".to_string(), Value::Str("pdes_window".to_string())),
            ("ph".to_string(), Value::Str("X".to_string())),
            ("ts".to_string(), Value::Float(ts_us)),
            ("dur".to_string(), Value::Float(dur_us)),
            ("pid".to_string(), Value::UInt(0)),
            ("tid".to_string(), Value::UInt(u64::from(r.shard))),
            (
                "args".to_string(),
                Value::Object(vec![
                    ("window".to_string(), Value::UInt(r.window)),
                    ("events".to_string(), Value::UInt(r.events)),
                    ("envelopes_in".to_string(), Value::UInt(r.envelopes_in)),
                    ("envelopes_out".to_string(), Value::UInt(r.envelopes_out)),
                    ("ties".to_string(), Value::UInt(r.ties)),
                    (
                        "barrier_a_wait_ns".to_string(),
                        Value::UInt(r.barrier_a_wait_ns),
                    ),
                    (
                        "barrier_b_wait_ns".to_string(),
                        Value::UInt(r.barrier_b_wait_ns),
                    ),
                ]),
            ),
        ]));
    }
    let doc = Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(events)),
        ("displayTimeUnit".to_string(), Value::Str("ns".to_string())),
    ]);
    // detlint::allow(S001, the window gantt document serializes by construction)
    serde_json::to_string_pretty(&doc).expect("window gantt serializes")
}

/// Stream the PDES window gantt into `w` (delegates to
/// [`par_windows_chrome_trace`]; wrap file sinks in a `BufWriter`).
pub fn write_par_windows_chrome_trace<W: io::Write>(
    records: &[WindowRecord],
    meta: &ParTraceMeta,
    w: &mut W,
) -> io::Result<()> {
    w.write_all(par_windows_chrome_trace(records, meta).as_bytes())?;
    w.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use itb_sim::SimTime;

    /// A hand-built source → ITB host → destination lifecycle.
    fn itb_path_tracer() -> PacketTracer {
        let mut t = PacketTracer::new(64);
        t.enable();
        let ev: [(Stage, u32, u64); 12] = [
            (Stage::HostInject, 0, 0),
            (Stage::NetInject, 0, 300),
            (Stage::NetLinkAcquire, 0, 350),
            (Stage::NetHead, 2, 600),
            (Stage::NetTail, 2, 900),
            (Stage::McpEarlyRecv, 2, 1172), // followed by detect → ItbHop
            (Stage::McpItbDetect, 2, 1200),
            (Stage::McpItbForward, 2, 1927),
            (Stage::NetReinject, 2, 2157),
            (Stage::NetTail, 5, 2800),
            (Stage::McpEarlyRecv, 5, 3072), // no detect follows → Delivery
            (Stage::HostDeliver, 5, 3500),
        ];
        for (stage, node, ns) in ev {
            t.record(42, stage, node, SimTime::from_ns(ns));
        }
        t
    }

    #[test]
    fn spans_tile_the_packet_lifetime() {
        let t = itb_path_tracer();
        let sp = spans(&t.for_packet(42));
        assert_eq!(sp.len(), 11);
        let total: f64 = sp.iter().map(|s| s.ns).sum();
        assert!((total - 3500.0).abs() < 1e-9, "spans must sum to e2e");
        assert_eq!(sp[0].from, Stage::HostInject);
        assert_eq!(sp[0].to, Stage::NetInject);
        assert!((sp[0].ns - 300.0).abs() < 1e-9);
    }

    #[test]
    fn attribution_sums_to_end_to_end_and_groups_itb_work() {
        let t = itb_path_tracer();
        let sp = spans(&t.for_packet(42));
        let attr = attribute(&sp);
        assert_eq!(attr.len(), 4);
        let total: f64 = attr.iter().map(|&(_, ns)| ns).sum();
        assert!((total - 3500.0).abs() < 1e-9);
        let get = |cat: Attribution| {
            attr.iter()
                .find(|&&(a, _)| a == cat)
                .map(|&(_, ns)| ns)
                .unwrap()
        };
        // ItbHop = tail→early_recv (272) + early_recv→detect (28)
        //        + detect→forward (727) + forward→reinject (230) = 1257.
        assert!((get(Attribution::ItbHop) - 1257.0).abs() < 1e-9);
        // Delivery = dst tail→early_recv (272) + early_recv→deliver (428).
        assert!((get(Attribution::Delivery) - 700.0).abs() < 1e-9);
        assert!((get(Attribution::Injection) - 300.0).abs() < 1e-9);
    }

    #[test]
    fn early_recv_without_detect_is_delivery() {
        // A direct (no-ITB) path: early_recv leads straight to recv_finish.
        let mut t = PacketTracer::new(16);
        t.enable();
        for (stage, ns) in [
            (Stage::NetTail, 100u64),
            (Stage::McpEarlyRecv, 372),
            (Stage::McpRecvFinish, 800),
        ] {
            t.record(1, stage, 4, SimTime::from_ns(ns));
        }
        let attr = attribute(&spans(&t.for_packet(1)));
        let itb: f64 = attr
            .iter()
            .filter(|&&(a, _)| a == Attribution::ItbHop)
            .map(|&(_, ns)| ns)
            .sum();
        assert_eq!(itb, 0.0, "no ITB work on a direct path");
    }

    #[test]
    fn jsonl_has_one_line_per_event() {
        let t = itb_path_tracer();
        let out = to_jsonl(&t);
        assert_eq!(out.lines().count(), 12);
        let first = out.lines().next().unwrap();
        assert!(first.contains("\"stage\""));
        assert!(first.contains("host.inject"));
        assert!(first.contains("\"packet\""));
    }

    #[test]
    fn chrome_trace_emits_slices_and_thread_names() {
        let t = itb_path_tracer();
        let out = to_chrome_trace(&t);
        assert!(out.contains("\"traceEvents\""));
        assert!(out.contains("\"thread_name\""));
        assert!(out.contains("\"mcp.itb_forward\""));
        // One metadata record + 11 slices.
        assert_eq!(out.matches("\"ph\"").count(), 12);
        // ts/dur are microseconds: the 300 ns injection span is 0.3 µs.
        assert!(out.contains("0.3"));
    }

    #[test]
    fn empty_tracer_exports_are_valid() {
        let t = PacketTracer::new(4);
        assert_eq!(to_jsonl(&t), "");
        let chrome = to_chrome_trace(&t);
        assert!(chrome.contains("\"traceEvents\": []"));
    }

    #[test]
    fn streaming_writers_match_string_exports() {
        let t = itb_path_tracer();
        let mut buf = Vec::new();
        write_chrome_trace(&t, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), to_chrome_trace(&t) + "\n");
    }

    fn window(shard: u32, window: u64, g_ps: u64) -> WindowRecord {
        WindowRecord {
            shard,
            window,
            g_ps,
            limit_ps: g_ps + 6_000_000,
            events: 10 + u64::from(shard),
            envelopes_in: 2,
            envelopes_out: 3,
            ties: 0,
            barrier_a_wait_ns: 120,
            barrier_b_wait_ns: 80,
        }
    }

    #[test]
    fn par_window_gantt_has_shard_lanes_and_meta() {
        let records = vec![window(0, 0, 0), window(0, 1, 6_000_000), window(1, 0, 0)];
        let meta = ParTraceMeta {
            cross_shard_ties: 7,
            per_shard_events: vec![21, 11],
            available_parallelism: 8,
            threads: 2,
        };
        let out = par_windows_chrome_trace(&records, &meta);
        // Self-describing metadata (satellite: no JSON sidecar needed).
        assert!(out.contains("\"itb_par_meta\""));
        assert!(out.contains("\"cross_shard_ties\": 7"));
        assert!(out.contains("\"available_parallelism\": 8"));
        assert!(out.contains("\"per_shard_events\""));
        // One lane per shard, named once.
        assert_eq!(out.matches("\"shard 0\"").count(), 1);
        assert_eq!(out.matches("\"shard 1\"").count(), 1);
        // One X slice per window with sim-time span in µs: the second
        // window of shard 0 starts at 6e6 ps = 6 µs and spans 6 µs.
        assert_eq!(out.matches("\"pdes_window\"").count(), 3);
        assert!(out.contains("\"window 1\""));
        assert!(out.contains("\"ts\": 6"));
        assert!(out.contains("\"dur\": 6"));
        assert!(out.contains("\"barrier_a_wait_ns\": 120"));
        // Streaming variant is the string plus a trailing newline.
        let mut buf = Vec::new();
        write_par_windows_chrome_trace(&records, &meta, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), out + "\n");
    }

    #[test]
    fn par_window_gantt_of_empty_run_is_valid() {
        let meta = ParTraceMeta {
            cross_shard_ties: 0,
            per_shard_events: Vec::new(),
            available_parallelism: 1,
            threads: 1,
        };
        let out = par_windows_chrome_trace(&[], &meta);
        assert!(out.contains("\"traceEvents\""));
        assert!(out.contains("\"itb_par_meta\""));
        assert!(!out.contains("thread_name"));
    }
}

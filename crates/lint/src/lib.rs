//! `itb-lint` — the workspace's determinism & soundness analyzer.
//!
//! Every headline number in this repo (the fig7 121 ns ITB overhead, the
//! fig8 1.316 µs/hop figure, the chaos and perf digests) rests on one
//! property: *the simulation is bit-deterministic under a fixed seed*.
//! Nothing in the type system stops a refactor from quietly breaking that —
//! a default-hasher map whose iteration order leaks into a report, a
//! wall-clock read in a sim path, a narrowing cast that wraps a sequence
//! number. `detlint` encodes those invariants as machine-checked rules and
//! runs as a hard CI gate.
//!
//! See [`rules`] for the rule set (D001–D003, S001–S002, U001), [`lexer`]
//! for the token scanner that makes the checks comment/string-safe, and the
//! `detlint` binary for the CLI.

#![deny(unsafe_code)]

pub mod lexer;
pub mod report;
pub mod rules;

pub use report::LintReport;
pub use rules::{classify, lint_source, FileClass, FileKind, Finding};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories under the workspace root that contain first-party Rust code.
/// `vendor/` (external API stand-ins) and `target/` are deliberately absent;
/// fixture corpora are excluded by [`rules::classify`].
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// Recursively collect `.rs` files under `dir`, sorted by name at every
/// level so the scan order — and therefore the report — is deterministic.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan the whole workspace rooted at `root` and produce the report.
///
/// Findings are ordered by (file, line, rule); files the classifier skips
/// (vendor stubs, fixtures) are not counted as scanned.
pub fn lint_tree(root: &Path) -> io::Result<LintReport> {
    let mut files = Vec::new();
    for sub in SCAN_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    let mut report = LintReport::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(class) = classify(&rel) else {
            continue;
        };
        let src = fs::read_to_string(&path)?;
        report.files_scanned += 1;
        report.findings.extend(lint_source(&class, &src));
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

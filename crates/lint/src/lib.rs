//! `itb-lint` — the workspace's determinism & soundness analyzer.
//!
//! Every headline number in this repo (the fig7 121 ns ITB overhead, the
//! fig8 1.316 µs/hop figure, the chaos and perf digests) rests on one
//! property: *the simulation is bit-deterministic under a fixed seed*.
//! Nothing in the type system stops a refactor from quietly breaking that —
//! a default-hasher map whose iteration order leaks into a report, a
//! wall-clock read in a sim path, a narrowing cast that wraps a sequence
//! number. `detlint` encodes those invariants as machine-checked rules and
//! runs as a hard CI gate.
//!
//! Since v2 the analyzer is a four-stage pipeline rather than a per-line
//! scanner:
//!
//! 1. [`lexer`] — comment/string-safe token stream;
//! 2. [`parser`] — item/signature skeleton (fns, impls, structs, uses);
//! 3. [`callgraph`] — workspace-wide name-resolved call edges;
//! 4. rules — the lexical set ([`rules`]: D001–D003, S001–S002, U001, A000)
//!    plus the flow/taint set ([`taint`]: T001 cross-crate nondeterminism
//!    reachability, T002 unordered-iteration-into-ordered-sink, T003 digest
//!    completeness).
//!
//! The `detlint` binary is the CLI; [`Workspace`] is the library entry used
//! by the fixture tests.

#![deny(unsafe_code)]

pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod taint;

pub use callgraph::GraphStats;
pub use report::LintReport;
pub use rules::{classify, lint_source, FileClass, FileKind, Finding};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories under the workspace root that contain first-party Rust code.
/// `vendor/` (external API stand-ins) and `target/` are deliberately absent;
/// fixture corpora are excluded by [`rules::classify`].
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// An in-memory set of classified sources, analyzed as one unit so the
/// call-graph rules see cross-crate edges. The CLI builds one from the tree
/// on disk; tests build synthetic multi-crate workspaces from fixtures.
#[derive(Default)]
pub struct Workspace {
    files: Vec<(FileClass, String)>,
}

impl Workspace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one source under a workspace-relative path. Returns `false` when
    /// the classifier skips the path (vendor, fixtures, non-Rust).
    pub fn add(&mut self, path: &str, src: impl Into<String>) -> bool {
        match classify(path) {
            Some(class) => {
                self.files.push((class, src.into()));
                true
            }
            None => false,
        }
    }

    /// Run the full pipeline over every added file.
    pub fn analyze(&self) -> LintReport {
        let (stats, findings) = analyze_sources(&self.files);
        let mut report = LintReport {
            files_scanned: self.files.len(),
            findings,
            stats,
            wall_ms: 0,
        };
        report
            .findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        report
    }
}

/// The shared pipeline body: lex → parse → call graph → lexical + taint
/// rules → allows. Returns the graph stats and the merged findings (not yet
/// globally sorted).
pub(crate) fn analyze_sources(files: &[(FileClass, String)]) -> (GraphStats, Vec<Finding>) {
    let lexed: Vec<lexer::Lexed> = files.iter().map(|(_, src)| lexer::lex(src)).collect();
    let allows: Vec<Vec<rules::Allow>> = lexed.iter().map(rules::file_allows).collect();
    let parsed: Vec<parser::ParsedFile> = files
        .iter()
        .zip(&lexed)
        .map(|((class, _), lx)| parser::parse_file(class, lx))
        .collect();
    let graph = callgraph::build(&parsed, &lexed);

    // Taint rules see only well-formed allows (A000s never suppress).
    let taint_allows: Vec<taint::FileAllows> = allows
        .iter()
        .map(|v| {
            v.iter()
                .filter(|a| a.well_formed)
                .map(|a| (a.rule.clone(), a.line))
                .collect()
        })
        .collect();
    let taint_findings = taint::check(&graph, &taint_allows);

    // Merge per file so dedup and allow application treat both finding
    // sources uniformly.
    let mut per_file: Vec<Vec<Finding>> = files
        .iter()
        .zip(&lexed)
        .zip(&allows)
        .map(|(((class, _), lx), al)| rules::lexical_findings(class, lx, al))
        .collect();
    for f in taint_findings {
        if let Some(ix) = files.iter().position(|(c, _)| c.path == f.file) {
            per_file[ix].push(f);
        }
    }
    let mut findings = Vec::new();
    for (bucket, al) in per_file.iter_mut().zip(&allows) {
        rules::apply_allows(bucket, al);
        findings.append(bucket);
    }
    (graph.stats, findings)
}

/// Recursively collect `.rs` files under `dir`, sorted by name at every
/// level so the scan order — and therefore the report — is deterministic.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan the whole workspace rooted at `root` and produce the report.
///
/// Findings are ordered by (file, line, rule); files the classifier skips
/// (vendor stubs, fixtures) are not counted as scanned.
pub fn lint_tree(root: &Path) -> io::Result<LintReport> {
    let mut files = Vec::new();
    for sub in SCAN_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    let mut ws = Workspace::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if classify(&rel).is_some() {
            ws.add(&rel, fs::read_to_string(&path)?);
        }
    }
    Ok(ws.analyze())
}

//! A minimal Rust token scanner.
//!
//! detlint does not parse Rust — it only needs a token stream that is
//! *correct about what is code and what is not*. The scanner therefore
//! handles exactly the lexical features that could fool a grep: line and
//! (nested) block comments, string/byte-string literals with escapes, raw
//! strings with arbitrary `#` fences, char literals vs. lifetimes, and
//! numeric literals (so float literals can be told apart from integers).
//! Everything else is an identifier or a single-character punctuation token.
//!
//! Comments are not discarded: their text and line numbers are kept so the
//! rule engine can honour `detlint::allow` annotations.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `as`, `unwrap`, ...).
    Ident,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `1e3`, `2f64`).
    Float,
    /// String, byte-string or raw-string literal (content dropped).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Single punctuation character.
    Punct(char),
}

/// One lexed token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    /// Identifier text; empty for non-identifier tokens.
    pub text: String,
    pub line: u32,
}

/// One comment (line or block) with the line it starts on.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// The result of scanning one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Scanner<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn eat_while(&mut self, f: impl Fn(u8) -> bool) -> usize {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if !f(b) {
                break;
            }
            self.bump();
        }
        self.pos - start
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Scan `src` into tokens and comments.
///
/// The scanner never fails: bytes it does not understand (non-ASCII outside
/// strings and comments, stray punctuation) become punctuation tokens, which
/// no rule matches on. That keeps the gate robust on any input.
pub fn lex(src: &str) -> Lexed {
    let mut s = Scanner {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    while let Some(b) = s.peek() {
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                s.bump();
            }
            b'/' if s.peek_at(1) == Some(b'/') => lex_line_comment(&mut s, &mut out),
            b'/' if s.peek_at(1) == Some(b'*') => lex_block_comment(&mut s, &mut out),
            b'"' => lex_string(&mut s, &mut out),
            b'\'' => lex_char_or_lifetime(&mut s, &mut out),
            b'r' | b'b' if raw_or_byte_string_ahead(&s) => lex_prefixed_string(&mut s, &mut out),
            _ if is_ident_start(b) => {
                let line = s.line;
                let start = s.pos;
                s.eat_while(is_ident_continue);
                let text = src[start..s.pos].to_string();
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text,
                    line,
                });
            }
            _ if b.is_ascii_digit() => lex_number(&mut s, &mut out),
            _ => {
                let line = s.line;
                s.bump();
                out.tokens.push(Token {
                    kind: TokKind::Punct(b as char),
                    text: String::new(),
                    line,
                });
            }
        }
    }
    out
}

/// True when the `r`/`b` at the cursor introduces a string-like literal
/// (`r"`, `r#`, `b"`, `b'`, `br"`, `br#`) rather than an identifier.
fn raw_or_byte_string_ahead(s: &Scanner<'_>) -> bool {
    matches!(
        (s.peek(), s.peek_at(1), s.peek_at(2)),
        (Some(b'r'), Some(b'"' | b'#'), _)
            | (Some(b'b'), Some(b'"' | b'\''), _)
            | (Some(b'b'), Some(b'r'), Some(b'"' | b'#'))
    )
}

fn lex_line_comment(s: &mut Scanner<'_>, out: &mut Lexed) {
    let line = s.line;
    let start = s.pos;
    while let Some(b) = s.peek() {
        if b == b'\n' {
            break;
        }
        s.bump();
    }
    let text = String::from_utf8_lossy(&s.src[start..s.pos]).into_owned();
    out.comments.push(Comment { text, line });
}

fn lex_block_comment(s: &mut Scanner<'_>, out: &mut Lexed) {
    let line = s.line;
    let start = s.pos;
    s.bump();
    s.bump(); // consume "/*"
    let mut depth = 1u32;
    while depth > 0 {
        match (s.peek(), s.peek_at(1)) {
            (Some(b'/'), Some(b'*')) => {
                depth += 1;
                s.bump();
                s.bump();
            }
            (Some(b'*'), Some(b'/')) => {
                depth -= 1;
                s.bump();
                s.bump();
            }
            (Some(_), _) => {
                s.bump();
            }
            (None, _) => break, // unterminated: tolerate
        }
    }
    let text = String::from_utf8_lossy(&s.src[start..s.pos]).into_owned();
    out.comments.push(Comment { text, line });
}

/// Plain `"..."` string with escape handling.
fn lex_string(s: &mut Scanner<'_>, out: &mut Lexed) {
    let line = s.line;
    s.bump(); // opening quote
    while let Some(b) = s.bump() {
        match b {
            b'\\' => {
                s.bump(); // skip escaped byte (covers \" and \\)
            }
            b'"' => break,
            _ => {}
        }
    }
    out.tokens.push(Token {
        kind: TokKind::Str,
        text: String::new(),
        line,
    });
}

/// `r"..."`, `r#"..."#`, `b"..."`, `br##"..."##`, `b'x'`.
fn lex_prefixed_string(s: &mut Scanner<'_>, out: &mut Lexed) {
    let line = s.line;
    let mut raw = false;
    if s.peek() == Some(b'b') {
        s.bump();
        if s.peek() == Some(b'\'') {
            // byte char literal b'x'
            s.bump();
            while let Some(b) = s.bump() {
                match b {
                    b'\\' => {
                        s.bump();
                    }
                    b'\'' => break,
                    _ => {}
                }
            }
            out.tokens.push(Token {
                kind: TokKind::Char,
                text: String::new(),
                line,
            });
            return;
        }
    }
    if s.peek() == Some(b'r') {
        raw = true;
        s.bump();
    }
    if raw {
        let fence = s.eat_while(|b| b == b'#');
        s.bump(); // opening quote
        'outer: while let Some(b) = s.bump() {
            if b == b'"' {
                // need `fence` hashes to close
                for i in 0..fence {
                    if s.peek_at(i) != Some(b'#') {
                        continue 'outer;
                    }
                }
                for _ in 0..fence {
                    s.bump();
                }
                break;
            }
        }
    } else {
        // b"..." — same escape rules as a plain string
        s.bump(); // opening quote
        while let Some(b) = s.bump() {
            match b {
                b'\\' => {
                    s.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
    }
    out.tokens.push(Token {
        kind: TokKind::Str,
        text: String::new(),
        line,
    });
}

/// Disambiguate `'a` (lifetime) from `'a'` / `'\n'` (char literal).
fn lex_char_or_lifetime(s: &mut Scanner<'_>, out: &mut Lexed) {
    let line = s.line;
    // Lifetime: quote, ident run, and the run is NOT closed by another quote.
    if let Some(b1) = s.peek_at(1) {
        if is_ident_start(b1) {
            let mut n = 2;
            while s.peek_at(n).is_some_and(is_ident_continue) {
                n += 1;
            }
            if s.peek_at(n) != Some(b'\'') {
                for _ in 0..n {
                    s.bump();
                }
                out.tokens.push(Token {
                    kind: TokKind::Lifetime,
                    text: String::new(),
                    line,
                });
                return;
            }
        }
    }
    // Char literal.
    s.bump(); // opening quote
    while let Some(b) = s.bump() {
        match b {
            b'\\' => {
                s.bump();
            }
            b'\'' => break,
            _ => {}
        }
    }
    out.tokens.push(Token {
        kind: TokKind::Char,
        text: String::new(),
        line,
    });
}

fn lex_number(s: &mut Scanner<'_>, out: &mut Lexed) {
    let line = s.line;
    let mut float = false;
    if s.peek() == Some(b'0')
        && matches!(s.peek_at(1), Some(b'x' | b'o' | b'b' | b'X' | b'O' | b'B'))
    {
        // Radix literal: always an integer (hex digits include 'e').
        s.bump();
        s.bump();
        s.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    } else {
        s.eat_while(|b| b.is_ascii_digit() || b == b'_');
        // Fractional part: a dot followed by a digit (`1.max()` stays an int).
        if s.peek() == Some(b'.') && s.peek_at(1).is_some_and(|b| b.is_ascii_digit()) {
            float = true;
            s.bump();
            s.eat_while(|b| b.is_ascii_digit() || b == b'_');
        }
        // Exponent.
        if matches!(s.peek(), Some(b'e' | b'E')) {
            let sign = usize::from(matches!(s.peek_at(1), Some(b'+' | b'-')));
            if s.peek_at(1 + sign).is_some_and(|b| b.is_ascii_digit()) {
                float = true;
                s.bump(); // e
                for _ in 0..sign {
                    s.bump();
                }
                s.eat_while(|b| b.is_ascii_digit() || b == b'_');
            }
        }
        // Type suffix (u64, f32, ...).
        if s.peek().is_some_and(is_ident_start) {
            let start = s.pos;
            s.eat_while(is_ident_continue);
            let suffix = &s.src[start..s.pos];
            if suffix == b"f32" || suffix == b"f64" {
                float = true;
            }
        }
    }
    out.tokens.push(Token {
        kind: if float { TokKind::Float } else { TokKind::Int },
        text: String::new(),
        line,
    });
}

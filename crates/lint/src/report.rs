//! Machine report for `results/detlint.json`, written with a hand-rolled
//! JSON emitter — the lint crate depends on nothing, including the vendored
//! serde stubs, so the gate can never be broken by the code it gates.
//!
//! v2 additions: the call-graph stats block (function/struct/edge counts and
//! call-resolution totals, so a resolution regression in the parser or the
//! graph is visible in review), the analyzer wall time, and a stable
//! *fingerprint* per finding — an FNV-1a hash over (rule, file, message,
//! same-message occurrence index) that survives line drift, so diffs of the
//! committed artifact show real rule-state changes, not renumbered lines.

use crate::callgraph::GraphStats;
use crate::rules::{Finding, RULES};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregate result of a whole-tree scan.
#[derive(Debug, Default)]
pub struct LintReport {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
    /// Call-graph totals from the pipeline's third stage.
    pub stats: GraphStats,
    /// Analyzer wall time, stamped by the CLI (0 in library use).
    pub wall_ms: u64,
}

impl LintReport {
    /// Findings that fail the gate (not covered by a reasoned allow).
    pub fn unallowed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.allowed)
    }

    /// Per-rule counts of unallowed findings, every rule present.
    pub fn summary(&self) -> BTreeMap<&'static str, usize> {
        let mut m: BTreeMap<&'static str, usize> = RULES.iter().map(|&r| (r, 0)).collect();
        for f in self.unallowed() {
            if let Some(n) = m.get_mut(f.rule) {
                *n += 1;
            }
        }
        m
    }

    /// Line-independent fingerprints, parallel to `findings`: FNV-1a 64 over
    /// rule, file, message and the occurrence index among findings sharing
    /// all three (so two identical unwrap-allows in one file keep distinct,
    /// stable ids when unrelated lines shift).
    pub fn fingerprints(&self) -> Vec<u64> {
        let mut seen: BTreeMap<(&str, &str, &str), u64> = BTreeMap::new();
        self.findings
            .iter()
            .map(|f| {
                let k = (f.rule, f.file.as_str(), f.message.as_str());
                let ix = seen.entry(k).or_insert(0);
                let fp = fingerprint(f, *ix);
                *ix += 1;
                fp
            })
            .collect()
    }

    /// Render the JSON document. Key order and finding order are fixed, so
    /// the artifact is byte-stable for a given tree (the `wall_ms` stamp is
    /// the one run-varying field; CI never byte-compares this artifact).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"version\": 2,");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(s, "  \"unallowed_findings\": {},", self.unallowed().count());
        let _ = writeln!(s, "  \"wall_ms\": {},", self.wall_ms);
        let _ = writeln!(
            s,
            "  \"callgraph\": {{\"functions\": {}, \"structs\": {}, \"edges\": {}, \
             \"resolved_calls\": {}, \"unresolved_calls\": {}}},",
            self.stats.functions,
            self.stats.structs,
            self.stats.edges,
            self.stats.resolved_calls,
            self.stats.unresolved_calls
        );
        s.push_str("  \"summary\": {");
        let summary = self.summary();
        for (i, (rule, n)) in summary.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{rule}\": {n}");
        }
        s.push_str("},\n");
        s.push_str("  \"findings\": [");
        let fps = self.fingerprints();
        for (i, (f, fp)) in self.findings.iter().zip(fps).enumerate() {
            s.push_str(if i > 0 { ",\n    " } else { "\n    " });
            let _ = write!(
                s,
                "{{\"rule\": \"{}\", \"fingerprint\": \"{:016x}\", \"file\": \"{}\", \
                 \"line\": {}, \"allowed\": {}, ",
                f.rule,
                fp,
                escape(&f.file),
                f.line,
                f.allowed
            );
            match &f.reason {
                Some(r) => {
                    let _ = write!(s, "\"reason\": \"{}\", ", escape(r));
                }
                None => s.push_str("\"reason\": null, "),
            }
            let _ = write!(s, "\"message\": \"{}\"}}", escape(&f.message));
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// FNV-1a 64 of one finding's stable identity.
fn fingerprint(f: &Finding, occurrence: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(f.rule.as_bytes());
    eat(&[0]);
    eat(f.file.as_bytes());
    eat(&[0]);
    eat(f.message.as_bytes());
    eat(&[0]);
    eat(&occurrence.to_le_bytes());
    h
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out
}

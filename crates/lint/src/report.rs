//! Machine report for `results/detlint.json`, written with a hand-rolled
//! JSON emitter — the lint crate depends on nothing, including the vendored
//! serde stubs, so the gate can never be broken by the code it gates.

use crate::rules::{Finding, RULES};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregate result of a whole-tree scan.
#[derive(Debug, Default)]
pub struct LintReport {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// Findings that fail the gate (not covered by a reasoned allow).
    pub fn unallowed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.allowed)
    }

    /// Per-rule counts of unallowed findings, every rule present.
    pub fn summary(&self) -> BTreeMap<&'static str, usize> {
        let mut m: BTreeMap<&'static str, usize> = RULES.iter().map(|&r| (r, 0)).collect();
        for f in self.unallowed() {
            if let Some(n) = m.get_mut(f.rule) {
                *n += 1;
            }
        }
        m
    }

    /// Render the JSON document. Key order and finding order are fixed, so
    /// the artifact is byte-stable for a given tree.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"version\": 1,");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(s, "  \"unallowed_findings\": {},", self.unallowed().count());
        s.push_str("  \"summary\": {");
        let summary = self.summary();
        for (i, (rule, n)) in summary.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{rule}\": {n}");
        }
        s.push_str("},\n");
        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            s.push_str(if i > 0 { ",\n    " } else { "\n    " });
            let _ = write!(
                s,
                "{{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"allowed\": {}, ",
                f.rule,
                escape(&f.file),
                f.line,
                f.allowed
            );
            match &f.reason {
                Some(r) => {
                    let _ = write!(s, "\"reason\": \"{}\", ", escape(r));
                }
                None => s.push_str("\"reason\": null, "),
            }
            let _ = write!(s, "\"message\": \"{}\"}}", escape(&f.message));
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out
}

//! Stage 3 of the detlint pipeline: a workspace call graph.
//!
//! Nodes are every parsed function in the workspace; edges are name-based
//! call resolutions with receiver-type heuristics:
//!
//! * **Path calls** (`itb_sim::par::run_shards(..)`, `crate::helper(..)`,
//!   `Type::assoc(..)`) resolve through per-crate module resolution — the
//!   extern name `itb_<dir>` maps back to `crates/<dir>`, `crate`/`self`/
//!   `super` to the calling file's own crate and module, and a path whose
//!   last segment before the call is a known type resolves to that type's
//!   impl methods.
//! * **Method calls** (`x.m(..)`) resolve by receiver type when the
//!   receiver is `self`, a field of `self`, a typed parameter or a local
//!   with a visible binding; otherwise by method name when exactly one
//!   function in the workspace has that name.
//! * **Bare calls** (`helper(..)`) resolve in the calling file's module,
//!   then crate-wide by unique name, then through `use` imports.
//!
//! Unresolvable calls (std/vendored callees, ambiguous names) are counted —
//! the totals land in `results/detlint.json` so a resolution regression is
//! visible — but produce no edge. The graph over-approximates where it is
//! cheap (nested fns share the outer body range) and under-approximates
//! only for calls detlint's taint rules then cannot see; the fixture corpus
//! pins the patterns the rules rely on.

use crate::lexer::{Lexed, TokKind, Token};
use crate::parser::{is_keyword, FnItem, ParsedFile, StructItem};
use std::collections::{BTreeMap, BTreeSet};

/// One call edge: callee (global fn index) plus the call-site line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    pub callee: usize,
    pub line: u32,
}

/// Aggregate graph statistics for the report.
#[derive(Debug, Default, Clone, Copy)]
pub struct GraphStats {
    pub functions: usize,
    pub structs: usize,
    pub edges: usize,
    pub resolved_calls: usize,
    pub unresolved_calls: usize,
}

/// Global function id: index into [`Graph::fns`].
#[derive(Debug, Clone, Copy)]
pub struct FnKey {
    /// Index into the workspace file list.
    pub file: usize,
    /// Index into that file's `fns`.
    pub item: usize,
}

/// The workspace call graph, borrowed over the parsed files.
pub struct Graph<'a> {
    pub files: &'a [ParsedFile],
    pub lexed: &'a [Lexed],
    pub fns: Vec<FnKey>,
    /// `edges[f]` = calls made by global fn `f`.
    pub edges: Vec<Vec<Edge>>,
    pub stats: GraphStats,
    /// All struct names in the workspace (receiver-type heuristics).
    pub struct_names: BTreeSet<String>,
    /// `(type name, method name)` → global fn ids.
    methods_by_type: BTreeMap<(String, String), Vec<usize>>,
    /// method name → global fn ids (fns declared inside an impl).
    methods_by_name: BTreeMap<String, Vec<usize>>,
    /// `(crate, module-path, name)` → global fn ids (free fns).
    free_by_mod: BTreeMap<(String, String, String), Vec<usize>>,
    /// `(crate, name)` → global fn ids (free fns, any module).
    free_by_crate: BTreeMap<(String, String), Vec<usize>>,
    /// `(crate, struct name)` → (file index, struct index).
    structs_by_crate: BTreeMap<(String, String), (usize, usize)>,
}

/// The fn item behind a global id.
impl<'a> Graph<'a> {
    pub fn fn_item(&self, id: usize) -> &'a FnItem {
        &self.files[self.fns[id].file].fns[self.fns[id].item]
    }

    pub fn file_of(&self, id: usize) -> &'a ParsedFile {
        &self.files[self.fns[id].file]
    }

    pub fn tokens_of(&self, id: usize) -> &'a [Token] {
        &self.lexed[self.fns[id].file].tokens
    }

    /// Look up a struct by crate and name.
    pub fn struct_in_crate(&self, krate: &str, name: &str) -> Option<&'a StructItem> {
        let &(f, s) = self
            .structs_by_crate
            .get(&(krate.to_string(), name.to_string()))?;
        Some(&self.files[f].structs[s])
    }

    /// Methods named `name` on type `ty` (global fn ids).
    pub fn methods_of(&self, ty: &str, name: &str) -> &[usize] {
        self.methods_by_type
            .get(&(ty.to_string(), name.to_string()))
            .map_or(&[], Vec::as_slice)
    }
}

/// Extern-crate name of a workspace crate directory (`sim` → `itb_sim`).
pub fn extern_name(krate: &str) -> String {
    if krate == "itb-myrinet" {
        "itb_myrinet".to_string()
    } else {
        format!("itb_{}", krate.replace('-', "_"))
    }
}

/// Inverse of [`extern_name`]: `itb_sim` → `sim`, if it names a workspace
/// crate present in `known`.
fn crate_of_extern(head: &str, known: &BTreeSet<String>) -> Option<String> {
    if head == "itb_myrinet" && known.contains("itb-myrinet") {
        return Some("itb-myrinet".to_string());
    }
    let dir = head.strip_prefix("itb_")?;
    // Workspace dirs use `-` only in the root package name; crate dirs are
    // single words, so the stripped name is the directory name.
    known.contains(dir).then(|| dir.to_string())
}

/// Build the call graph over the parsed workspace. `files` and `lexed` are
/// parallel arrays.
pub fn build<'a>(files: &'a [ParsedFile], lexed: &'a [Lexed]) -> Graph<'a> {
    let mut g = Graph {
        files,
        lexed,
        fns: Vec::new(),
        edges: Vec::new(),
        stats: GraphStats::default(),
        struct_names: BTreeSet::new(),
        methods_by_type: BTreeMap::new(),
        methods_by_name: BTreeMap::new(),
        free_by_mod: BTreeMap::new(),
        free_by_crate: BTreeMap::new(),
        structs_by_crate: BTreeMap::new(),
    };
    let mut crates: BTreeSet<String> = BTreeSet::new();

    // Pass 1: index every fn and struct.
    for (fi, file) in files.iter().enumerate() {
        crates.insert(file.class.krate.clone());
        for (si, st) in file.structs.iter().enumerate() {
            g.struct_names.insert(st.name.clone());
            g.structs_by_crate
                .entry((file.class.krate.clone(), st.name.clone()))
                .or_insert((fi, si));
        }
        for (ii, f) in file.fns.iter().enumerate() {
            let id = g.fns.len();
            g.fns.push(FnKey { file: fi, item: ii });
            match &f.self_ty {
                Some(ty) => {
                    g.methods_by_type
                        .entry((ty.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                    g.methods_by_name
                        .entry(f.name.clone())
                        .or_default()
                        .push(id);
                }
                None => {
                    let mut module = file.module.clone();
                    module.extend(f.mods.iter().cloned());
                    g.free_by_mod
                        .entry((file.class.krate.clone(), module.join("::"), f.name.clone()))
                        .or_default()
                        .push(id);
                    g.free_by_crate
                        .entry((file.class.krate.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                }
            }
        }
    }
    g.stats.functions = g.fns.len();
    g.stats.structs = g.structs_by_crate.len();

    // Pass 2: extract and resolve call sites.
    let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); g.fns.len()];
    for (id, edge_slot) in edges.iter_mut().enumerate() {
        let key = g.fns[id];
        let file = &files[key.file];
        let f = &file.fns[key.item];
        let Some((b0, b1)) = f.body else { continue };
        let toks = &lexed[key.file].tokens;
        let locals = local_types(&toks[b0..b1.min(toks.len())], &g.struct_names);
        let mut out: Vec<Edge> = Vec::new();
        for j in b0..b1.min(toks.len()) {
            if !call_head(toks, j) {
                continue;
            }
            let name = toks[j].text.as_str();
            let line = toks[j].line;
            let resolved = resolve_call(&g, file, f, toks, b0, j, &locals);
            match resolved {
                Resolution::Edges(ids) => {
                    g.stats.resolved_calls += 1;
                    for callee in ids {
                        let e = Edge { callee, line };
                        if !out.contains(&e) {
                            out.push(e);
                        }
                    }
                }
                Resolution::External => {}
                Resolution::Unresolved => {
                    // Bare uppercase names are tuple-struct/enum
                    // constructors, not calls — don't count them as misses.
                    if name.starts_with(|c: char| c.is_ascii_lowercase() || c == '_') {
                        g.stats.unresolved_calls += 1;
                    }
                }
            }
        }
        *edge_slot = out;
    }
    g.stats.edges = edges.iter().map(Vec::len).sum();
    g.edges = edges;
    g
}

/// Is token `j` the name position of a call — `ident (` not preceded by
/// `fn` or `!` (macro)?
fn call_head(toks: &[Token], j: usize) -> bool {
    if !matches!(toks.get(j), Some(t) if t.kind == TokKind::Ident)
        || !matches!(toks.get(j + 1), Some(t) if t.kind == TokKind::Punct('('))
        || is_keyword(&toks[j].text)
    {
        return false;
    }
    match j.checked_sub(1).and_then(|p| toks.get(p)) {
        Some(t) if t.kind == TokKind::Ident && t.text == "fn" => false,
        Some(t) if t.kind == TokKind::Punct('!') => false,
        _ => true,
    }
}

enum Resolution {
    Edges(Vec<usize>),
    /// Confidently not a workspace function (std/vendored path).
    External,
    Unresolved,
}

/// Resolve the call whose name token sits at `j`.
#[allow(clippy::too_many_arguments)]
fn resolve_call(
    g: &Graph<'_>,
    file: &ParsedFile,
    f: &FnItem,
    toks: &[Token],
    body_start: usize,
    j: usize,
    locals: &BTreeMap<String, String>,
) -> Resolution {
    let name = toks[j].text.clone();
    let prev = |off: usize| j.checked_sub(off).and_then(|p| toks.get(p));
    let prev_punct =
        |off: usize, c: char| matches!(prev(off), Some(t) if t.kind == TokKind::Punct(c));
    let prev_ident = |off: usize| match prev(off) {
        Some(t) if t.kind == TokKind::Ident => Some(t.text.as_str()),
        _ => None,
    };

    // Method call: `recv.name(..)`.
    if prev_punct(1, '.') {
        let receiver_ty: Option<String> = if prev_ident(2) == Some("self") {
            f.self_ty.clone()
        } else if prev_punct(3, '.') && prev_ident(4) == Some("self") {
            // `self.field.name(..)` — type of the field.
            prev_ident(2).and_then(|field| field_type(g, file, f, field))
        } else if let Some(r) = prev_ident(2) {
            // Typed parameter or local binding.
            f.params
                .iter()
                .find(|p| p.name == r)
                .and_then(|p| p.ty.iter().rev().find(|w| g.struct_names.contains(*w)))
                .cloned()
                .or_else(|| locals.get(r).cloned())
        } else {
            None
        };
        if let Some(ty) = receiver_ty {
            let ids = g.methods_of(&ty, &name);
            if !ids.is_empty() {
                return Resolution::Edges(ids.to_vec());
            }
        }
        return match g.methods_by_name.get(&name) {
            Some(ids) if ids.len() == 1 => Resolution::Edges(ids.clone()),
            _ => Resolution::Unresolved,
        };
    }

    // Path call: `a::b::name(..)`.
    if prev_punct(1, ':') && prev_punct(2, ':') {
        let mut segs: Vec<String> = Vec::new();
        let mut k = j;
        while k >= body_start + 3
            && matches!(toks.get(k - 1), Some(t) if t.kind == TokKind::Punct(':'))
            && matches!(toks.get(k - 2), Some(t) if t.kind == TokKind::Punct(':'))
            && matches!(toks.get(k - 3), Some(t) if t.kind == TokKind::Ident)
        {
            segs.push(toks[k - 3].text.clone());
            k -= 3;
        }
        segs.reverse();
        return resolve_path(g, file, f, &segs, &name);
    }

    // Bare call: `name(..)` — workspace free fns are snake_case; uppercase
    // heads are tuple-struct constructors.
    if !name.starts_with(|c: char| c.is_ascii_lowercase() || c == '_') {
        return Resolution::External;
    }
    // Same module first.
    let mut module = file.module.clone();
    module.extend(f.mods.iter().cloned());
    let key = (file.class.krate.clone(), module.join("::"), name.clone());
    if let Some(ids) = g.free_by_mod.get(&key) {
        return Resolution::Edges(ids.clone());
    }
    // Crate root (common for helpers next to the caller's module).
    let key = (file.class.krate.clone(), String::new(), name.clone());
    if let Some(ids) = g.free_by_mod.get(&key) {
        return Resolution::Edges(ids.clone());
    }
    // Unique in the same crate.
    if let Some(ids) = g
        .free_by_crate
        .get(&(file.class.krate.clone(), name.clone()))
    {
        if ids.len() == 1 {
            return Resolution::Edges(ids.clone());
        }
    }
    // `use` import of the bare name.
    for u in &file.uses {
        if u.local == name && u.path.len() >= 2 {
            let segs = &u.path[..u.path.len() - 1];
            if let r @ Resolution::Edges(_) = resolve_path(g, file, f, segs, &name) {
                return r;
            }
        }
    }
    // Glob imports.
    for u in &file.uses {
        if u.local == "*" {
            if let r @ Resolution::Edges(_) = resolve_path(g, file, f, &u.path, &name) {
                return r;
            }
        }
    }
    Resolution::Unresolved
}

/// Resolve `segs::name(..)` — `segs` are the path segments before the name.
fn resolve_path(
    g: &Graph<'_>,
    file: &ParsedFile,
    f: &FnItem,
    segs: &[String],
    name: &str,
) -> Resolution {
    let Some(last) = segs.last() else {
        return Resolution::Unresolved;
    };
    // `Type::assoc(..)` / `Self::assoc(..)` — the segment just before the
    // name is a type.
    let ty = if last == "Self" {
        f.self_ty.clone()
    } else if g.struct_names.contains(last) {
        Some(last.clone())
    } else {
        None
    };
    if let Some(ty) = ty {
        let ids = g.methods_of(&ty, name);
        return if ids.is_empty() {
            Resolution::Unresolved
        } else {
            Resolution::Edges(ids.to_vec())
        };
    }
    // Module path: resolve the crate from the head segment.
    let known: BTreeSet<String> = g.files.iter().map(|p| p.class.krate.clone()).collect();
    let (krate, rest): (String, &[String]) = match segs[0].as_str() {
        "crate" | "self" => (file.class.krate.clone(), &segs[1..]),
        "super" => (file.class.krate.clone(), &segs[1..]),
        "std" | "core" | "alloc" => return Resolution::External,
        head => match crate_of_extern(head, &known) {
            Some(k) => (k, &segs[1..]),
            None => {
                // The head may itself be a use-imported module alias
                // (`use itb_sim::par; par::run(..)`).
                for u in &file.uses {
                    if u.local == *head && !u.path.is_empty() {
                        let mut full: Vec<String> = u.path.clone();
                        full.extend_from_slice(&segs[1..]);
                        return resolve_path(g, file, f, &full, name);
                    }
                }
                return Resolution::Unresolved;
            }
        },
    };
    let key = (krate.clone(), rest.join("::"), name.to_string());
    if let Some(ids) = g.free_by_mod.get(&key) {
        return Resolution::Edges(ids.clone());
    }
    // Re-exports flatten modules: fall back to a unique crate-wide match.
    if let Some(ids) = g.free_by_crate.get(&(krate, name.to_string())) {
        if ids.len() == 1 {
            return Resolution::Edges(ids.clone());
        }
    }
    Resolution::Unresolved
}

/// Type of `self.<field>` on the calling method's receiver, when the field's
/// type mentions exactly one known struct.
fn field_type(g: &Graph<'_>, file: &ParsedFile, f: &FnItem, field: &str) -> Option<String> {
    let ty = f.self_ty.as_ref()?;
    let st = g.struct_in_crate(&file.class.krate, ty)?;
    let fld = st.fields.iter().find(|x| x.name == field)?;
    fld.ty
        .iter()
        .rev()
        .find(|w| g.struct_names.contains(*w))
        .cloned()
}

/// Scan a body token slice for `let [mut] name [: Ty] = RHS;` bindings and
/// record the struct type each binding most plausibly carries — from the
/// annotation when present, else from an `T::ctor(..)` RHS head. Shadowing
/// keeps the last binding; that is enough for receiver heuristics.
pub fn local_types(body: &[Token], struct_names: &BTreeSet<String>) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let mut j = 0usize;
    while j < body.len() {
        if !(body[j].kind == TokKind::Ident && body[j].text == "let") {
            j += 1;
            continue;
        }
        let mut k = j + 1;
        if matches!(body.get(k), Some(t) if t.kind == TokKind::Ident && t.text == "mut") {
            k += 1;
        }
        let Some(name_tok) = body.get(k) else { break };
        if name_tok.kind != TokKind::Ident {
            j = k;
            continue;
        }
        let name = name_tok.text.clone();
        k += 1;
        let mut ty: Option<String> = None;
        if matches!(body.get(k), Some(t) if t.kind == TokKind::Punct(':')) {
            // Annotated type: idents until `=` or `;` at depth 0.
            k += 1;
            let mut depth = 0i32;
            while let Some(t) = body.get(k) {
                match &t.kind {
                    TokKind::Punct('<') | TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                    TokKind::Punct('>') | TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                    TokKind::Punct('=') | TokKind::Punct(';') if depth <= 0 => break,
                    TokKind::Ident if struct_names.contains(&t.text) && ty.is_none() => {
                        ty = Some(t.text.clone());
                    }
                    _ => {}
                }
                k += 1;
            }
        }
        if ty.is_none() {
            // RHS head `T::...` names the type for constructor calls.
            if matches!(body.get(k), Some(t) if t.kind == TokKind::Punct('=')) {
                if let Some(t) = body.get(k + 1) {
                    if t.kind == TokKind::Ident && struct_names.contains(&t.text) {
                        ty = Some(t.text.clone());
                    }
                }
            }
        }
        if let Some(ty) = ty {
            out.insert(name, ty);
        }
        j = k.max(j + 1);
    }
    out
}

//! The determinism & soundness rule set.
//!
//! Every rule encodes an invariant the repo's results actually depend on
//! (see README "Static analysis" for the full table):
//!
//! * **D001** — no default-hasher `HashMap`/`HashSet`. SipHash's per-process
//!   random seed makes iteration order differ between runs; anywhere that
//!   order can leak into behaviour or reports breaks bit-determinism. Use
//!   `itb_sim::fxmap::{FxHashMap, FxHashSet}` or a `BTreeMap`/`BTreeSet`.
//!   Only `crates/sim/src/fxmap.rs` (which wraps std's map with a fixed
//!   hasher) is exempt.
//! * **D002** — no wall-clock, OS randomness or ad-hoc threading
//!   (`Instant`, `SystemTime`, `thread_rng`, `thread::spawn`/`scope`).
//!   Simulated time comes from the event queue; host time in a sim-side
//!   path destroys replayability, and unsynchronized threads make event
//!   order depend on the OS scheduler. The sanctioned fork point is the
//!   barrier-synchronized PDES driver in `itb_sim::par` (annotated);
//!   benches are exempt. Bench-style wall-clock sections elsewhere opt
//!   out with `// detlint::allow(D002, reason)`.
//! * **D003** — no `f32`/`f64` arithmetic on event-time values. Integer
//!   picoseconds in, integer picoseconds out; float conversion is reserved
//!   for reporting. Flagged: float expressions inside `SimTime::from_*` /
//!   `SimDuration::from_*` integer constructors, and `as_ns_f64()` /
//!   `as_us_f64()` results cast straight back to integers. The audited
//!   quantisation boundary lives in `crates/sim/src/time.rs` (exempt).
//! * **S001** — no `unwrap()` / `expect()` / `panic!` in library code
//!   (tests, benches and bins are exempt). An invariant-backed panic is
//!   fine *if stated*: annotate with `// detlint::allow(S001, reason)`.
//! * **S002** — no narrowing `as` casts (`as u8/u16/u32/i8/i16/i32`) in
//!   library code. Packet ids, sequence numbers and times silently wrap
//!   under `as`; use `TryFrom` or `itb_sim::narrow`.
//! * **U001** — every library crate root carries `#![deny(unsafe_code)]`
//!   (or `forbid`).
//! * **A000** — a `detlint::allow` annotation that is malformed, names an
//!   unknown rule, or omits the reason. Allows are part of the audit trail;
//!   a reasonless allow is itself a finding and suppresses nothing.
//!
//! D002 additionally flags `std::env::var`/`env!` in sim-side code:
//! environment-dependent behaviour is cross-machine nondeterminism. Benches
//! stay exempt (`ITB_THREADS` is how the perf harness sweeps shard counts).
//!
//! The flow/taint rules **T001**–**T003** live in [`crate::taint`] and run
//! over the workspace call graph rather than single files; their ids are
//! registered here so allows and the report summary cover them.

use crate::lexer::{Comment, Lexed, TokKind, Token};

/// All rule identifiers, in report order.
pub const RULES: &[&str] = &[
    "A000", "D001", "D002", "D003", "S001", "S002", "T001", "T002", "T003", "U001",
];

/// One finding. `allowed` findings are kept in the report (audit trail) but
/// do not fail the gate.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
    pub allowed: bool,
    pub reason: Option<String>,
}

/// How a file participates in the rule set, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/` code built into a library target.
    Lib,
    /// `src/bin/`, `src/main.rs`, `examples/`.
    Bin,
    /// `tests/` integration tests.
    Test,
    /// `benches/`.
    Bench,
}

/// Path-derived context for one file.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub kind: FileKind,
    /// Crate name (`sim`, `gm`, ... or `itb-myrinet` for the root package).
    pub krate: String,
}

/// Crates whose code runs inside the simulation clock domain — D003's
/// float-on-time rule applies here. The root package (integration tests and
/// examples) drives the same engine, so it is included.
const SIM_SIDE: &[&str] = &[
    "sim",
    "net",
    "nic",
    "gm",
    "routing",
    "topo",
    "core",
    "obs",
    "itb-myrinet",
];

/// Does crate `krate` run inside the simulation clock domain? (Shared with
/// the taint rules: T001 roots its reachability analysis in these crates.)
pub fn is_sim_side(krate: &str) -> bool {
    SIM_SIDE.contains(&krate)
}

/// Classify a workspace-relative path, or `None` if detlint does not scan it
/// (vendor stubs emulate external crates' APIs — `criterion` legitimately
/// reads `Instant` — and fixture corpora contain deliberate violations).
pub fn classify(path: &str) -> Option<FileClass> {
    if !path.ends_with(".rs") {
        return None;
    }
    if path.starts_with("vendor/") || path.starts_with("target/") {
        return None;
    }
    if path.contains("/tests/fixtures/") {
        return None;
    }
    let (krate, rest) = if let Some(r) = path.strip_prefix("crates/") {
        let (name, rest) = r.split_once('/')?;
        (name.to_string(), rest.to_string())
    } else {
        ("itb-myrinet".to_string(), path.to_string())
    };
    let kind = if rest.starts_with("tests/") {
        FileKind::Test
    } else if rest.starts_with("benches/") {
        FileKind::Bench
    } else if rest.starts_with("examples/") || rest.starts_with("src/bin/") || rest == "src/main.rs"
    {
        FileKind::Bin
    } else if rest.starts_with("src/") {
        FileKind::Lib
    } else {
        return None;
    };
    Some(FileClass {
        path: path.to_string(),
        kind,
        krate,
    })
}

/// A parsed `detlint::allow` annotation (rule id, then a required reason).
pub(crate) struct Allow {
    pub(crate) rule: String,
    pub(crate) reason: String,
    /// Line the comment starts on; the allow covers this line and the next.
    pub(crate) line: u32,
    pub(crate) well_formed: bool,
}

/// All allow annotations in one lexed file.
pub(crate) fn file_allows(lexed: &Lexed) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in &lexed.comments {
        parse_allows(c, &mut allows);
    }
    allows
}

/// Extract every `detlint::allow` annotation from a comment. A comment may
/// carry several.
fn parse_allows(c: &Comment, out: &mut Vec<Allow>) {
    const NEEDLE: &str = "detlint::allow(";
    let mut rest = c.text.as_str();
    // Track how many newlines precede the current search window so an allow
    // inside a multi-line block comment lands on its own line.
    let mut line_off = 0u32;
    while let Some(ix) = rest.find(NEEDLE) {
        let newlines = rest[..ix].bytes().filter(|&b| b == b'\n').count();
        line_off += u32::try_from(newlines).unwrap_or(u32::MAX);
        let after = &rest[ix + NEEDLE.len()..];
        let line = c.line + line_off;
        match after.find(')') {
            Some(close) => {
                let inner = &after[..close];
                let (rule, reason) = match inner.split_once(',') {
                    Some((r, why)) => (r.trim(), why.trim()),
                    None => (inner.trim(), ""),
                };
                let known = RULES.contains(&rule);
                out.push(Allow {
                    rule: rule.to_string(),
                    reason: reason.to_string(),
                    line,
                    well_formed: known && !reason.is_empty(),
                });
                rest = &after[close + 1..];
            }
            None => {
                out.push(Allow {
                    rule: String::new(),
                    reason: String::new(),
                    line,
                    well_formed: false,
                });
                break;
            }
        }
    }
}

/// Line spans belonging to `#[cfg(test)]` items (inline unit-test modules).
/// S001/S002 treat those as test code even though they sit in a `src/` file.
fn cfg_test_regions(toks: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if is_cfg_test_attr(toks, i) {
            // Skip this attribute and any further attributes, then span the
            // following item (to its matching brace, or to `;`).
            let mut j = skip_attr(toks, i);
            while matches!(toks.get(j), Some(t) if t.kind == TokKind::Punct('#')) {
                j = skip_attr(toks, j);
            }
            let start_line = toks[i].line;
            if let Some(end_line) = item_end_line(toks, j) {
                regions.push((start_line, end_line));
            }
        }
        i += 1;
    }
    regions
}

/// Does `#` at index `i` open exactly `#[cfg(test)]`?
fn is_cfg_test_attr(toks: &[Token], i: usize) -> bool {
    matches!(toks.get(i), Some(t) if t.kind == TokKind::Punct('#'))
        && matches!(toks.get(i + 1), Some(t) if t.kind == TokKind::Punct('['))
        && ident_is(toks, i + 2, "cfg")
        && matches!(toks.get(i + 3), Some(t) if t.kind == TokKind::Punct('('))
        && ident_is(toks, i + 4, "test")
        && matches!(toks.get(i + 5), Some(t) if t.kind == TokKind::Punct(')'))
        && matches!(toks.get(i + 6), Some(t) if t.kind == TokKind::Punct(']'))
}

/// Index just past the attribute opening at `i` (`#` `[` ... `]`, brackets
/// balanced).
fn skip_attr(toks: &[Token], i: usize) -> usize {
    let mut j = i + 1; // at '['
    let mut depth = 0i32;
    while j < toks.len() {
        match toks[j].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Last line of the item starting at token `j`: the matching `}` of its
/// first brace, or the first `;` if one comes sooner.
fn item_end_line(toks: &[Token], j: usize) -> Option<u32> {
    let mut k = j;
    while k < toks.len() {
        match toks[k].kind {
            TokKind::Punct(';') => return Some(toks[k].line),
            TokKind::Punct('{') => {
                let mut depth = 0i32;
                while k < toks.len() {
                    match toks[k].kind {
                        TokKind::Punct('{') => depth += 1,
                        TokKind::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                return Some(toks[k].line);
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                return None;
            }
            _ => {}
        }
        k += 1;
    }
    None
}

fn ident_is(toks: &[Token], i: usize, text: &str) -> bool {
    matches!(toks.get(i), Some(t) if t.kind == TokKind::Ident && t.text == text)
}

fn punct_is(toks: &[Token], i: usize, c: char) -> bool {
    matches!(toks.get(i), Some(t) if t.kind == TokKind::Punct(c))
}

/// Lint one file's source under its path-derived classification: the full
/// pipeline (lexical rules plus call-graph taint rules) on a one-file
/// workspace. Cross-crate taint obviously needs more than one file — use
/// [`crate::Workspace`] for that — but T002/T003 and the intra-file half of
/// T001 all fire here, which is what the fixture corpus exercises.
pub fn lint_source(class: &FileClass, src: &str) -> Vec<Finding> {
    let files = vec![(class.clone(), src.to_string())];
    crate::analyze_sources(&files).1
}

/// The per-file lexical rules, raw (allows not yet applied; A000 findings
/// for the malformed allows included).
pub(crate) fn lexical_findings(class: &FileClass, lexed: &Lexed, allows: &[Allow]) -> Vec<Finding> {
    let mut raw: Vec<Finding> = Vec::new();
    // Malformed allows are findings in their own right and never suppress.
    for a in allows.iter().filter(|a| !a.well_formed) {
        let what = if a.rule.is_empty() {
            "unterminated detlint::allow annotation".to_string()
        } else if !RULES.contains(&a.rule.as_str()) {
            format!("detlint::allow names unknown rule `{}`", a.rule)
        } else {
            format!(
                "detlint::allow({}) has no reason — every allow must say why",
                a.rule
            )
        };
        raw.push(Finding {
            rule: "A000",
            file: class.path.clone(),
            line: a.line,
            message: what,
            allowed: false,
            reason: None,
        });
    }

    let test_regions = cfg_test_regions(&lexed.tokens);
    let in_test = |line: u32| test_regions.iter().any(|&(a, b)| line >= a && line <= b);
    let lib_code = |line: u32| class.kind == FileKind::Lib && !in_test(line);

    check_d001(class, lexed, &mut raw);
    check_d002(class, lexed, &mut raw);
    check_d003(class, lexed, &mut raw);
    check_s001(class, lexed, &lib_code, &mut raw);
    check_s002(class, lexed, &lib_code, &mut raw);
    check_u001(class, lexed, &mut raw);
    raw
}

/// Dedup repeated hits of one rule on one line (e.g. two `HashSet` mentions
/// in a single declaration), then apply the file's allows. This is the final
/// per-file step for lexical *and* taint findings — an allow covers its own
/// line and the next, whichever stage produced the finding.
pub(crate) fn apply_allows(raw: &mut Vec<Finding>, allows: &[Allow]) {
    raw.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    raw.dedup_by(|a, b| a.rule == b.rule && a.line == b.line && a.rule != "A000");
    for f in raw.iter_mut() {
        if f.rule == "A000" {
            continue;
        }
        if let Some(a) = allows.iter().find(|a| {
            a.well_formed && a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line)
        }) {
            f.allowed = true;
            f.reason = Some(a.reason.clone());
        }
    }
}

/// D001: default-hasher std maps.
fn check_d001(class: &FileClass, lexed: &Lexed, out: &mut Vec<Finding>) {
    if class.path == "crates/sim/src/fxmap.rs" {
        return;
    }
    for t in &lexed.tokens {
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            out.push(Finding {
                rule: "D001",
                file: class.path.clone(),
                line: t.line,
                message: format!(
                    "default-hasher `{}` — iteration order is seeded per process; \
                     use `itb_sim::Fx{}` or a BTree collection",
                    t.text, t.text
                ),
                allowed: false,
                reason: None,
            });
        }
    }
}

/// D002: wall clock / OS randomness / ad-hoc threading.
fn check_d002(class: &FileClass, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "Instant" || t.text == "SystemTime" || t.text == "thread_rng" {
            out.push(Finding {
                rule: "D002",
                file: class.path.clone(),
                line: t.line,
                message: format!(
                    "`{}` — wall clock / OS randomness breaks replayability; \
                     simulated time comes from the event queue, seeds from SimRng",
                    t.text
                ),
                allowed: false,
                reason: None,
            });
        }
        // `thread::spawn` / `thread::scope`: OS scheduling order leaking
        // into simulation state is the same hazard as wall-clock reads.
        // The sanctioned spawn site is the barrier-synchronized PDES
        // driver (`crates/sim/src/par.rs`, annotated); benches measure
        // wall-clock throughput by design and are exempt.
        if t.text == "thread"
            && punct_is(toks, i + 1, ':')
            && punct_is(toks, i + 2, ':')
            && matches!(toks.get(i + 3), Some(s) if s.kind == TokKind::Ident
                && matches!(s.text.as_str(), "spawn" | "scope"))
            && !(class.kind == FileKind::Bench || class.krate == "bench")
        {
            out.push(Finding {
                rule: "D002",
                file: class.path.clone(),
                line: t.line,
                message: format!(
                    "`thread::{}` — unsynchronized threads make event order depend on \
                     the OS scheduler; go through `itb_sim::par::run_shards` (the \
                     deterministic fork point) or state why this spawn cannot \
                     affect simulation state",
                    toks[i + 3].text
                ),
                allowed: false,
                reason: None,
            });
        }
        // Environment reads in sim-side code: `env::var`/`env::var_os` and
        // the `env!`/`option_env!` macros make behaviour depend on the host
        // environment — cross-machine nondeterminism. Benches are exempt
        // (ITB_THREADS is the sanctioned perf-harness knob), as is the
        // non-sim bench crate itself.
        let env_exempt = class.kind == FileKind::Bench
            || class.krate == "bench"
            || !SIM_SIDE.contains(&class.krate.as_str());
        if !env_exempt {
            let is_env_call = t.text == "env"
                && punct_is(toks, i + 1, ':')
                && punct_is(toks, i + 2, ':')
                && matches!(toks.get(i + 3), Some(s) if s.kind == TokKind::Ident
                    && matches!(s.text.as_str(), "var" | "var_os"));
            let is_env_macro =
                (t.text == "env" || t.text == "option_env") && punct_is(toks, i + 1, '!');
            if is_env_call || is_env_macro {
                out.push(Finding {
                    rule: "D002",
                    file: class.path.clone(),
                    line: t.line,
                    message: "environment read in sim-side code — behaviour that varies \
                              with the host environment is cross-machine nondeterminism; \
                              route configuration through explicit parameters or seeds"
                        .to_string(),
                    allowed: false,
                    reason: None,
                });
            }
        }
    }
}

/// D003: float arithmetic touching event-time values (sim-side crates only).
fn check_d003(class: &FileClass, lexed: &Lexed, out: &mut Vec<Finding>) {
    if !SIM_SIDE.contains(&class.krate.as_str()) {
        return;
    }
    if class.path == "crates/sim/src/time.rs" {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        // (i) SimTime::from_ps(...) / SimDuration::from_ns(...) with a float
        // inside the argument list. The `*_f64` constructors in time.rs are
        // the audited quantisation boundary and are not integer constructors,
        // so they do not match here.
        if (ident_is(toks, i, "SimTime") || ident_is(toks, i, "SimDuration"))
            && punct_is(toks, i + 1, ':')
            && punct_is(toks, i + 2, ':')
            && matches!(toks.get(i + 3), Some(t) if t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "from_ps" | "from_ns" | "from_us" | "from_ms"))
            && punct_is(toks, i + 4, '(')
        {
            let mut depth = 0i32;
            let mut j = i + 4;
            while j < toks.len() {
                match &toks[j].kind {
                    TokKind::Punct('(') => depth += 1,
                    TokKind::Punct(')') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokKind::Float => {
                        push_d003(class, toks[i].line, out);
                        break;
                    }
                    TokKind::Ident if toks[j].text == "f32" || toks[j].text == "f64" => {
                        push_d003(class, toks[i].line, out);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // (ii) `.as_ns_f64() as <int>` — float readback recast to integer.
        if (ident_is(toks, i, "as_ns_f64") || ident_is(toks, i, "as_us_f64"))
            && punct_is(toks, i + 1, '(')
            && punct_is(toks, i + 2, ')')
            && ident_is(toks, i + 3, "as")
        {
            push_d003(class, toks[i].line, out);
        }
    }
}

fn push_d003(class: &FileClass, line: u32, out: &mut Vec<Finding>) {
    out.push(Finding {
        rule: "D003",
        file: class.path.clone(),
        line,
        message: "float arithmetic on an event-time value — keep the clock in integer \
                  picoseconds; quantise through SimDuration::from_ns_f64/from_us_f64, \
                  read back integers with as_ps()"
            .to_string(),
        allowed: false,
        reason: None,
    });
}

/// S001: panics in library code.
fn check_s001(
    class: &FileClass,
    lexed: &Lexed,
    lib_code: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !lib_code(t.line) {
            continue;
        }
        let hit = match t.text.as_str() {
            "unwrap" | "expect" => {
                i > 0 && punct_is(toks, i - 1, '.') && punct_is(toks, i + 1, '(')
            }
            "panic" => punct_is(toks, i + 1, '!'),
            _ => false,
        };
        if hit {
            out.push(Finding {
                rule: "S001",
                file: class.path.clone(),
                line: t.line,
                message: format!(
                    "`{}` in library code — return an error, or state the invariant \
                     with detlint::allow(S001, why it cannot fail)",
                    t.text
                ),
                allowed: false,
                reason: None,
            });
        }
    }
}

/// S002: narrowing `as` casts in library code.
fn check_s002(
    class: &FileClass,
    lexed: &Lexed,
    lib_code: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if ident_is(toks, i, "as")
            && matches!(toks.get(i + 1), Some(t) if t.kind == TokKind::Ident
                && NARROW.contains(&t.text.as_str()))
            && lib_code(toks[i].line)
        {
            out.push(Finding {
                rule: "S002",
                file: class.path.clone(),
                line: toks[i].line,
                message: format!(
                    "narrowing `as {}` silently wraps out-of-range values — use \
                     `try_into` or `itb_sim::narrow`",
                    toks[i + 1].text
                ),
                allowed: false,
                reason: None,
            });
        }
    }
}

/// U001: library crate roots must deny unsafe code.
fn check_u001(class: &FileClass, lexed: &Lexed, out: &mut Vec<Finding>) {
    if !(class.path.starts_with("crates/") && class.path.ends_with("/src/lib.rs")) {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if (ident_is(toks, i, "deny") || ident_is(toks, i, "forbid")) && punct_is(toks, i + 1, '(')
        {
            let mut j = i + 2;
            let mut depth = 1i32;
            while j < toks.len() && depth > 0 {
                match toks[j].kind {
                    TokKind::Punct('(') => depth += 1,
                    TokKind::Punct(')') => depth -= 1,
                    TokKind::Ident if toks[j].text == "unsafe_code" => return,
                    _ => {}
                }
                j += 1;
            }
        }
    }
    out.push(Finding {
        rule: "U001",
        file: class.path.clone(),
        line: 1,
        message: "library crate root lacks `#![deny(unsafe_code)]`".to_string(),
        allowed: false,
        reason: None,
    });
}

//! Stage 2 of the detlint pipeline: a lightweight recursive-descent
//! item/signature parser over the token stream from [`crate::lexer`].
//!
//! detlint v2 needs just enough syntax to build a workspace call graph and
//! check digest completeness — function items (name, parameters, body token
//! range), impl blocks (so methods know their receiver type), struct fields
//! (names and flat type words), and `use` trees (so call sites can resolve
//! imported names). There is deliberately **no expression grammar**: bodies
//! stay opaque token ranges that [`crate::callgraph`] and [`crate::taint`]
//! scan with targeted patterns. The parser never fails — unrecognized
//! constructs are skipped token by token, which keeps the gate robust on any
//! input the lexer accepts.

use crate::lexer::{Lexed, TokKind, Token};
use crate::rules::{FileClass, FileKind};

/// One parsed function (free function or method).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Receiver type when declared inside an `impl` block (`impl T` or
    /// `impl Tr for T` both record `T`).
    pub self_ty: Option<String>,
    /// Inline-module path within the file (`mod a { mod b { fn f } }` →
    /// `["a", "b"]`). The file's own module path is held by [`ParsedFile`].
    pub mods: Vec<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Parameter names with their flat type words (identifier tokens of the
    /// type, in order — enough for receiver-type and `Digest` heuristics).
    pub params: Vec<Param>,
    /// Token index range of the body (exclusive of the outer braces), or
    /// `None` for bodyless trait-method signatures.
    pub body: Option<(usize, usize)>,
    /// Declared under `#[cfg(test)]` (directly or via an enclosing module).
    pub in_cfg_test: bool,
}

/// One function parameter: its binding name and the identifier words of its
/// type (`d: &mut itb_sim::Digest` → name `d`, ty `["mut", "itb_sim", "Digest"]`).
#[derive(Debug, Clone)]
pub struct Param {
    pub name: String,
    pub ty: Vec<String>,
}

/// One struct with named fields (tuple and unit structs record no fields).
#[derive(Debug, Clone)]
pub struct StructItem {
    pub name: String,
    pub line: u32,
    pub fields: Vec<FieldItem>,
    pub in_cfg_test: bool,
}

/// One named struct field.
#[derive(Debug, Clone)]
pub struct FieldItem {
    pub name: String,
    /// Identifier words of the field type, in order.
    pub ty: Vec<String>,
    pub line: u32,
}

/// One leaf of a `use` tree: the name it binds locally and the full path
/// segments it came from (`use itb_sim::par::run_shards as rs` →
/// local `rs`, path `["itb_sim", "par", "run_shards"]`).
#[derive(Debug, Clone)]
pub struct UseImport {
    pub local: String,
    pub path: Vec<String>,
}

/// Everything the later stages need from one file.
#[derive(Debug)]
pub struct ParsedFile {
    pub class: FileClass,
    /// Module path of the file within its crate, derived from the path
    /// (`crates/net/src/network.rs` → `["network"]`; crate roots, bins,
    /// tests, benches and examples are their own roots → `[]`).
    pub module: Vec<String>,
    pub fns: Vec<FnItem>,
    pub structs: Vec<StructItem>,
    pub uses: Vec<UseImport>,
}

/// Keywords that can never open a call or be a callee name.
const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "super", "trait", "true", "type", "unsafe", "use", "where",
    "while",
];

/// Is `text` a Rust keyword (for call-site filtering)?
pub fn is_keyword(text: &str) -> bool {
    KEYWORDS.contains(&text)
}

/// Derive the in-crate module path from a workspace-relative file path.
fn module_of(class: &FileClass) -> Vec<String> {
    if class.kind != FileKind::Lib {
        // Bins, tests, benches, examples are each their own crate root.
        return Vec::new();
    }
    let rest = class
        .path
        .strip_prefix("crates/")
        .and_then(|r| r.split_once('/'))
        .map_or(class.path.as_str(), |(_, rest)| rest);
    let Some(inner) = rest.strip_prefix("src/") else {
        return Vec::new();
    };
    let mut mods: Vec<String> = inner.split('/').map(str::to_string).collect();
    let Some(last) = mods.pop() else {
        return Vec::new();
    };
    match last.as_str() {
        "lib.rs" | "main.rs" | "mod.rs" => {}
        other => mods.push(other.trim_end_matches(".rs").to_string()),
    }
    mods
}

/// Parser state: a cursor over the token stream plus the nesting context
/// (inline modules, impl receiver, cfg(test) depth).
struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    out: ParsedFile,
    mods: Vec<String>,
    self_ty: Option<String>,
    cfg_test_depth: u32,
}

/// Parse one lexed file into its item skeleton.
pub fn parse_file(class: &FileClass, lexed: &Lexed) -> ParsedFile {
    let mut p = Parser {
        toks: &lexed.tokens,
        pos: 0,
        out: ParsedFile {
            class: class.clone(),
            module: module_of(class),
            fns: Vec::new(),
            structs: Vec::new(),
            uses: Vec::new(),
        },
        mods: Vec::new(),
        self_ty: None,
        cfg_test_depth: 0,
    };
    p.items(usize::MAX);
    p.out
}

impl Parser<'_> {
    fn kind(&self, off: usize) -> Option<&TokKind> {
        self.toks.get(self.pos + off).map(|t| &t.kind)
    }

    fn is_ident(&self, off: usize, text: &str) -> bool {
        matches!(self.toks.get(self.pos + off), Some(t) if t.kind == TokKind::Ident && t.text == text)
    }

    fn is_punct(&self, off: usize, c: char) -> bool {
        matches!(self.kind(off), Some(TokKind::Punct(p)) if *p == c)
    }

    fn ident_text(&self, off: usize) -> Option<&str> {
        match self.toks.get(self.pos + off) {
            Some(t) if t.kind == TokKind::Ident => Some(&t.text),
            _ => None,
        }
    }

    /// Walk items until `end` (token index) or end of stream. Called for the
    /// file root and recursively for inline `mod` bodies.
    fn items(&mut self, end: usize) {
        while self.pos < self.toks.len().min(end) {
            // `#[...]` attribute: note cfg(test), skip, and remember whether
            // it applies to the next item.
            if self.is_punct(0, '#') && self.is_punct(1, '[') {
                let cfg_test = self.attr_is_cfg_test();
                let after = self.skip_attr();
                if cfg_test {
                    // cfg(test) scopes to the next item: bump the depth for
                    // exactly that item by handling it inline.
                    self.pos = after;
                    self.cfg_test_depth += 1;
                    self.item(end);
                    self.cfg_test_depth -= 1;
                    continue;
                }
                self.pos = after;
                continue;
            }
            self.item(end);
        }
    }

    /// Handle one item (or skip one token when nothing matches).
    fn item(&mut self, end: usize) {
        // Skip any further attributes on this item.
        while self.is_punct(0, '#') && self.is_punct(1, '[') {
            let cfg_test = self.attr_is_cfg_test();
            if cfg_test {
                self.cfg_test_depth += 1;
                let after = self.skip_attr();
                self.pos = after;
                self.item(end);
                self.cfg_test_depth -= 1;
                return;
            }
            self.pos = self.skip_attr();
        }
        if self.pos >= self.toks.len().min(end) {
            return;
        }
        match self.ident_text(0) {
            Some("fn") => self.fn_item(),
            Some("impl") => self.impl_item(end),
            Some("mod") => self.mod_item(end),
            Some("struct") => self.struct_item(),
            Some("use") => self.use_item(),
            Some("trait") => self.trait_item(end),
            _ => self.pos += 1,
        }
    }

    /// Does the `#[...]` attribute at the cursor contain `cfg ( test`?
    fn attr_is_cfg_test(&self) -> bool {
        self.is_ident(2, "cfg") && self.is_punct(3, '(') && self.is_ident(4, "test")
    }

    /// Token index just past the `#[...]` at the cursor.
    fn skip_attr(&self) -> usize {
        let mut j = self.pos + 1;
        let mut depth = 0i32;
        while j < self.toks.len() {
            match self.toks[j].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// `fn name<...>(params) -> Ret { body }` — record and move past it.
    /// The cursor continues *inside* the body so nested items (and nested
    /// fns) are seen too; the body range still spans the whole outer fn,
    /// which deliberately over-approximates taint for nested definitions.
    fn fn_item(&mut self) {
        let line = self.toks[self.pos].line;
        let Some(name) = self.ident_text(1).map(str::to_string) else {
            self.pos += 1;
            return;
        };
        self.pos += 2;
        // Skip generics `<...>` (angle-depth; `->` cannot appear here).
        if self.is_punct(0, '<') {
            let mut depth = 0i32;
            while self.pos < self.toks.len() {
                match self.toks[self.pos].kind {
                    TokKind::Punct('<') => depth += 1,
                    TokKind::Punct('>') => {
                        depth -= 1;
                        if depth == 0 {
                            self.pos += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                self.pos += 1;
            }
        }
        let params = self.params();
        // Scan to the body `{` or a terminating `;` (trait signature).
        let mut body = None;
        let mut brace_guard = 0usize;
        while self.pos < self.toks.len() {
            match self.toks[self.pos].kind {
                TokKind::Punct(';') => {
                    self.pos += 1;
                    break;
                }
                TokKind::Punct('{') => {
                    let close = self.matching_brace(self.pos);
                    body = Some((self.pos + 1, close));
                    self.pos += 1; // continue inside the body
                    break;
                }
                _ => {}
            }
            self.pos += 1;
            brace_guard += 1;
            if brace_guard > 4096 {
                break; // malformed signature: bail rather than loop
            }
        }
        self.out.fns.push(FnItem {
            name,
            self_ty: self.self_ty.clone(),
            mods: self.mods.clone(),
            line,
            params,
            body,
            in_cfg_test: self.cfg_test_depth > 0,
        });
    }

    /// Parse `(...)` parameter list into [`Param`]s; cursor ends just past
    /// the closing parenthesis.
    fn params(&mut self) -> Vec<Param> {
        let mut out = Vec::new();
        if !self.is_punct(0, '(') {
            return out;
        }
        self.pos += 1;
        let mut depth = 1i32;
        // One parameter: `name :` then type words until `,` at depth 1.
        let mut cur_name: Option<String> = None;
        let mut cur_ty: Vec<String> = Vec::new();
        let mut seen_colon = false;
        while self.pos < self.toks.len() && depth > 0 {
            let t = &self.toks[self.pos];
            match &t.kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('<') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Punct(',') if depth == 1 => {
                    if let Some(name) = cur_name.take() {
                        out.push(Param {
                            name,
                            ty: std::mem::take(&mut cur_ty),
                        });
                    }
                    cur_ty.clear();
                    seen_colon = false;
                }
                TokKind::Punct(':') if depth == 1 => seen_colon = true,
                TokKind::Ident => {
                    if seen_colon {
                        cur_ty.push(t.text.clone());
                    } else if cur_name.is_none() && t.text != "mut" && t.text != "self" {
                        cur_name = Some(t.text.clone());
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
        if let Some(name) = cur_name.take() {
            out.push(Param { name, ty: cur_ty });
        }
        if self.is_punct(0, ')') {
            self.pos += 1;
        }
        out
    }

    /// `impl<...> Type { ... }` / `impl<...> Trait for Type { ... }` —
    /// records the receiver type, then parses the block's items with that
    /// context.
    fn impl_item(&mut self, end: usize) {
        self.pos += 1;
        // Skip generics.
        if self.is_punct(0, '<') {
            let mut depth = 0i32;
            while self.pos < self.toks.len() {
                match self.toks[self.pos].kind {
                    TokKind::Punct('<') => depth += 1,
                    TokKind::Punct('>') => {
                        depth -= 1;
                        if depth == 0 {
                            self.pos += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                self.pos += 1;
            }
        }
        // Collect path idents up to `{`; the receiver is the last path
        // ident after `for` when present, else the last before any `<`/`{`.
        let mut last_before_for: Option<String> = None;
        let mut last_after_for: Option<String> = None;
        let mut seen_for = false;
        let mut angle = 0i32;
        while self.pos < self.toks.len() {
            let t = &self.toks[self.pos];
            match &t.kind {
                TokKind::Punct('{') if angle == 0 => break,
                TokKind::Punct(';') => {
                    // `impl Trait for Type;` (rare) — nothing to parse.
                    self.pos += 1;
                    return;
                }
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') => angle = (angle - 1).max(0),
                TokKind::Ident if t.text == "for" && angle == 0 => seen_for = true,
                TokKind::Ident if t.text == "where" && angle == 0 => {}
                TokKind::Ident if angle == 0 => {
                    if seen_for {
                        last_after_for = Some(t.text.clone());
                    } else {
                        last_before_for = Some(t.text.clone());
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
        if !self.is_punct(0, '{') {
            return;
        }
        let close = self.matching_brace(self.pos);
        self.pos += 1;
        let prev = self.self_ty.take();
        self.self_ty = last_after_for.or(last_before_for);
        self.items(close.min(end));
        self.pos = close.saturating_add(1).min(self.toks.len());
        self.self_ty = prev;
    }

    /// `mod name { ... }` or `mod name;`.
    fn mod_item(&mut self, end: usize) {
        let Some(name) = self.ident_text(1).map(str::to_string) else {
            self.pos += 1;
            return;
        };
        self.pos += 2;
        if self.is_punct(0, ';') {
            self.pos += 1;
            return;
        }
        if !self.is_punct(0, '{') {
            return;
        }
        let close = self.matching_brace(self.pos);
        self.pos += 1;
        let is_test_mod = name == "tests";
        self.mods.push(name);
        if is_test_mod {
            // Inline `mod tests` conventionally sits under #[cfg(test)]; the
            // attribute was already counted when present, and counting the
            // name too keeps fixtures honest either way.
            self.cfg_test_depth += 1;
        }
        self.items(close.min(end));
        if is_test_mod {
            self.cfg_test_depth -= 1;
        }
        self.mods.pop();
        self.pos = close.saturating_add(1).min(self.toks.len());
    }

    /// `struct Name { fields }` / `struct Name(...);` / `struct Name;`.
    fn struct_item(&mut self) {
        let line = self.toks[self.pos].line;
        let Some(name) = self.ident_text(1).map(str::to_string) else {
            self.pos += 1;
            return;
        };
        self.pos += 2;
        // Skip generics and any `where` clause up to `{`, `(` or `;`.
        let mut angle = 0i32;
        while self.pos < self.toks.len() {
            match self.toks[self.pos].kind {
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') => angle = (angle - 1).max(0),
                TokKind::Punct('{') if angle == 0 => break,
                TokKind::Punct('(') if angle == 0 => {
                    // Tuple struct: skip to `;`, record no fields.
                    while self.pos < self.toks.len() && !self.is_punct(0, ';') {
                        self.pos += 1;
                    }
                    self.out.structs.push(StructItem {
                        name,
                        line,
                        fields: Vec::new(),
                        in_cfg_test: self.cfg_test_depth > 0,
                    });
                    return;
                }
                TokKind::Punct(';') if angle == 0 => {
                    self.out.structs.push(StructItem {
                        name,
                        line,
                        fields: Vec::new(),
                        in_cfg_test: self.cfg_test_depth > 0,
                    });
                    self.pos += 1;
                    return;
                }
                _ => {}
            }
            self.pos += 1;
        }
        if !self.is_punct(0, '{') {
            return;
        }
        let close = self.matching_brace(self.pos);
        self.pos += 1;
        let mut fields = Vec::new();
        // Field grammar inside the braces: [attrs] [pub[(..)]] name : Ty ,
        while self.pos < close.min(self.toks.len()) {
            while self.is_punct(0, '#') && self.is_punct(1, '[') {
                self.pos = self.skip_attr();
            }
            if self.is_ident(0, "pub") {
                self.pos += 1;
                if self.is_punct(0, '(') {
                    let mut d = 0i32;
                    while self.pos < self.toks.len() {
                        match self.toks[self.pos].kind {
                            TokKind::Punct('(') => d += 1,
                            TokKind::Punct(')') => {
                                d -= 1;
                                if d == 0 {
                                    self.pos += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        self.pos += 1;
                    }
                }
            }
            let (Some(fname), true) = (
                self.ident_text(0).map(str::to_string),
                self.is_punct(1, ':'),
            ) else {
                self.pos += 1;
                continue;
            };
            let fline = self.toks[self.pos].line;
            self.pos += 2;
            let mut ty = Vec::new();
            let mut depth = 0i32;
            while self.pos < close.min(self.toks.len()) {
                let t = &self.toks[self.pos];
                match &t.kind {
                    TokKind::Punct('<') | TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                    TokKind::Punct('>') | TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                    TokKind::Punct(',') if depth <= 0 => {
                        self.pos += 1;
                        break;
                    }
                    TokKind::Ident => ty.push(t.text.clone()),
                    _ => {}
                }
                self.pos += 1;
            }
            fields.push(FieldItem {
                name: fname,
                ty,
                line: fline,
            });
        }
        self.out.structs.push(StructItem {
            name,
            line,
            fields,
            in_cfg_test: self.cfg_test_depth > 0,
        });
        self.pos = close.saturating_add(1).min(self.toks.len());
    }

    /// `use a::b::{c, d as e, f::*};` — flatten into [`UseImport`] leaves.
    fn use_item(&mut self) {
        self.pos += 1;
        let mut prefix: Vec<String> = Vec::new();
        self.use_tree(&mut prefix);
        // Consume the trailing `;` when present.
        if self.is_punct(0, ';') {
            self.pos += 1;
        }
    }

    /// One use-tree level; `prefix` is the path accumulated so far.
    fn use_tree(&mut self, prefix: &mut Vec<String>) {
        let depth_at_entry = prefix.len();
        loop {
            match self.kind(0) {
                Some(TokKind::Ident) => {
                    let word = self.toks[self.pos].text.clone();
                    self.pos += 1;
                    if word == "as" {
                        // Alias: next ident is the local name for the
                        // current prefix.
                        if let Some(alias) = self.ident_text(0).map(str::to_string) {
                            self.pos += 1;
                            self.out.uses.push(UseImport {
                                local: alias,
                                path: prefix.clone(),
                            });
                            prefix.truncate(depth_at_entry);
                        }
                        continue;
                    }
                    prefix.push(word);
                }
                Some(TokKind::Punct(':')) if self.is_punct(1, ':') => {
                    self.pos += 2;
                    if self.is_punct(0, '{') {
                        self.pos += 1;
                        // Braced group: parse each comma-separated subtree.
                        loop {
                            match self.kind(0) {
                                Some(TokKind::Punct('}')) => {
                                    self.pos += 1;
                                    break;
                                }
                                Some(TokKind::Punct(',')) => self.pos += 1,
                                None => break,
                                _ => {
                                    let mut sub = prefix.clone();
                                    self.use_tree(&mut sub);
                                }
                            }
                        }
                        prefix.truncate(depth_at_entry);
                        return;
                    }
                    if self.is_punct(0, '*') {
                        self.pos += 1;
                        // Glob: record with the `*` marker as local name.
                        self.out.uses.push(UseImport {
                            local: "*".to_string(),
                            path: prefix.clone(),
                        });
                        prefix.truncate(depth_at_entry);
                        return;
                    }
                    continue;
                }
                _ => break,
            }
        }
        if prefix.len() > depth_at_entry {
            if let Some(last) = prefix.last().cloned() {
                self.out.uses.push(UseImport {
                    local: last,
                    path: prefix.clone(),
                });
            }
        }
        prefix.truncate(depth_at_entry);
    }

    /// `trait Name { ... }` — parse the block for method signatures (no
    /// receiver type recorded; trait methods resolve via implementing
    /// types' impl blocks, the trait's own defaults stay name-matched).
    fn trait_item(&mut self, end: usize) {
        self.pos += 1;
        while self.pos < self.toks.len() && !self.is_punct(0, '{') && !self.is_punct(0, ';') {
            self.pos += 1;
        }
        if !self.is_punct(0, '{') {
            self.pos += 1;
            return;
        }
        let close = self.matching_brace(self.pos);
        self.pos += 1;
        self.items(close.min(end));
        self.pos = close.saturating_add(1).min(self.toks.len());
    }

    /// Index of the `}` matching the `{` at `open` (or the end of stream).
    fn matching_brace(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut j = open;
        while j < self.toks.len() {
            match self.toks[j].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        self.toks.len()
    }
}

//! detlint CLI — scan the workspace, print findings, write the JSON report,
//! exit nonzero on any unallowed finding.
//!
//! Usage: `detlint [--root DIR] [--json PATH] [--rule ID] [--budget-ms N] [--quiet]`
//!
//! The JSON report defaults to `<root>/results/detlint.json`, or
//! `$ITB_RESULTS_DIR/detlint.json` when that variable is set (matching the
//! bench binaries' convention so CI can redirect artifacts).
//!
//! `--rule ID` is a local-iteration filter: only findings of that rule are
//! printed and gated, and no JSON report is written unless `--json` is
//! passed explicitly. `--budget-ms N` (CI default: 15000) is the soft
//! self-benchmark gate — the parser/call-graph stages must not quietly make
//! the gate slow; 0 disables.

#![deny(unsafe_code)]

use itb_lint::lint_tree;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str =
    "usage: detlint [--root DIR] [--json PATH] [--rule ID] [--budget-ms N] [--quiet]";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json: Option<PathBuf> = None;
    let mut quiet = false;
    let mut rule: Option<String> = None;
    let mut budget_ms: u64 = 0;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--json" => match args.next() {
                Some(v) => json = Some(PathBuf::from(v)),
                None => return usage("--json needs a value"),
            },
            "--rule" => match args.next() {
                Some(v) => rule = Some(v),
                None => return usage("--rule needs a rule id"),
            },
            "--budget-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => budget_ms = v,
                None => return usage("--budget-ms needs an integer"),
            },
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if let Some(r) = &rule {
        if !itb_lint::rules::RULES.contains(&r.as_str()) {
            return usage(&format!(
                "unknown rule `{r}` (known: {})",
                itb_lint::rules::RULES.join(", ")
            ));
        }
    }

    // Analyzer self-benchmark: pure observability — the wall reading lands
    // in the report's wall_ms field and the soft budget gate, never in any
    // analysis result.
    // detlint::allow(D002, analyzer self-benchmark: wall time only stamps the report and the soft budget gate)
    let t0 = std::time::Instant::now();
    let mut report = match lint_tree(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("detlint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let wall_ms = u64::try_from(t0.elapsed().as_millis()).unwrap_or(u64::MAX);
    report.wall_ms = wall_ms;

    let gated = |f: &itb_lint::Finding| rule.as_deref().is_none_or(|r| f.rule == r);
    let mut unallowed = 0usize;
    for f in report.findings.iter().filter(|f| gated(f)) {
        if f.allowed {
            continue;
        }
        unallowed += 1;
        if !quiet {
            println!("{}:{}: {} {}", f.file, f.line, f.rule, f.message);
        }
    }

    // With a --rule filter the run is a local iteration aid: skip the report
    // unless an explicit --json destination asks for it.
    let json = match (&rule, json) {
        (Some(_), None) => None,
        (_, explicit) => Some(explicit.unwrap_or_else(|| {
            std::env::var_os("ITB_RESULTS_DIR")
                .map(PathBuf::from)
                .unwrap_or_else(|| root.join("results"))
                .join("detlint.json")
        })),
    };
    if let Some(json) = &json {
        if let Some(dir) = json.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("detlint: cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
        if let Err(e) = std::fs::write(json, report.to_json()) {
            eprintln!("detlint: cannot write {}: {e}", json.display());
            return ExitCode::FAILURE;
        }
    }

    let allowed = report
        .findings
        .iter()
        .filter(|f| gated(f) && f.allowed)
        .count();
    println!(
        "detlint: {} files, {} fns, {} call edges ({} resolved / {} unresolved calls); \
         {} unallowed finding(s), {} allowed; {} ms{}",
        report.files_scanned,
        report.stats.functions,
        report.stats.edges,
        report.stats.resolved_calls,
        report.stats.unresolved_calls,
        unallowed,
        allowed,
        wall_ms,
        json.as_deref()
            .map(|p| format!("; report: {}", p.display()))
            .unwrap_or_default()
    );
    if budget_ms > 0 && wall_ms > budget_ms {
        eprintln!(
            "detlint: analyzer took {wall_ms} ms, over the {budget_ms} ms soft budget — \
             the parser/call-graph stages regressed"
        );
        return ExitCode::FAILURE;
    }
    if unallowed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("detlint: {err}\n{USAGE}");
    ExitCode::FAILURE
}

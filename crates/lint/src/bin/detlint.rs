//! detlint CLI — scan the workspace, print findings, write the JSON report,
//! exit nonzero on any unallowed finding.
//!
//! Usage: `detlint [--root DIR] [--json PATH] [--quiet]`
//!
//! The JSON report defaults to `<root>/results/detlint.json`, or
//! `$ITB_RESULTS_DIR/detlint.json` when that variable is set (matching the
//! bench binaries' convention so CI can redirect artifacts).

#![deny(unsafe_code)]

use itb_lint::lint_tree;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json: Option<PathBuf> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--json" => match args.next() {
                Some(v) => json = Some(PathBuf::from(v)),
                None => return usage("--json needs a value"),
            },
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                eprintln!("usage: detlint [--root DIR] [--json PATH] [--quiet]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let json = json.unwrap_or_else(|| {
        std::env::var_os("ITB_RESULTS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| root.join("results"))
            .join("detlint.json")
    });

    let report = match lint_tree(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("detlint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut unallowed = 0usize;
    for f in &report.findings {
        if f.allowed {
            continue;
        }
        unallowed += 1;
        if !quiet {
            println!("{}:{}: {} {}", f.file, f.line, f.rule, f.message);
        }
    }

    if let Some(dir) = json.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("detlint: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = std::fs::write(&json, report.to_json()) {
        eprintln!("detlint: cannot write {}: {e}", json.display());
        return ExitCode::FAILURE;
    }

    let allowed = report.findings.len() - unallowed;
    println!(
        "detlint: {} files scanned, {} unallowed finding(s), {} allowed; report: {}",
        report.files_scanned,
        unallowed,
        allowed,
        json.display()
    );
    if unallowed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("detlint: {err}\nusage: detlint [--root DIR] [--json PATH] [--quiet]");
    ExitCode::FAILURE
}

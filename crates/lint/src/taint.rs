//! Stage 4 of the detlint pipeline: flow/taint rules over the call graph.
//!
//! * **T001 — cross-crate nondeterminism taint.** A function that lexically
//!   reads a nondeterminism source (`Instant`, `SystemTime`, `thread_rng`,
//!   `available_parallelism`, `std::env::var`, `env!`) is a *source*; taint
//!   propagates backward along call edges. Any function in sim-side library
//!   code that calls a tainted function is flagged at the call site — this
//!   is exactly the laundering the per-line D002 scan cannot see: the
//!   wall-clock read sits in another crate behind an innocent-looking
//!   helper. A reasoned `detlint::allow(T001, ..)` on the call site both
//!   allows the finding and *seals* the edge: callers further up are not
//!   tainted through it, because the allow asserts the reading never enters
//!   sim state.
//! * **T002 — unordered iteration feeding an ordered sink.** A `for` loop
//!   directly over an `FxHashMap`/`FxHashSet` (fixed seed, but *insertion-
//!   order dependent* iteration) whose body schedules events, feeds a
//!   [`Digest`], or writes an exported artifact is flagged: the hazard
//!   class behind the PR 5 cross-shard-tie contract. Iterating a sorted
//!   copy (collect + sort first) is the sanctioned shape and does not
//!   match.
//! * **T003 — digest completeness.** Every struct with a `state_digest`
//!   hook must either fold each field into the digest (directly or through
//!   helper methods on the same type) or carry an explicit
//!   `detlint::allow(T003, why)` on the field. Behavioral state silently
//!   missing from the digest would let the model checker merge states that
//!   diverge later.

use crate::callgraph::{local_types, Graph};
use crate::lexer::{TokKind, Token};
use crate::rules::{is_sim_side, FileKind, Finding};
use std::collections::{BTreeMap, BTreeSet};

/// Well-formed allows of one file, as `(rule, line)` pairs.
pub type FileAllows = Vec<(String, u32)>;

/// Run all taint rules. `allows[i]` holds the well-formed allow annotations
/// of workspace file `i` (parallel to `graph.files`).
pub fn check(graph: &Graph<'_>, allows: &[FileAllows]) -> Vec<Finding> {
    let mut out = Vec::new();
    t001(graph, allows, &mut out);
    t002(graph, &mut out);
    t003(graph, &mut out);
    out
}

/// Does file `fi` carry a well-formed allow for `rule` covering `line`?
/// (An allow on line `a` covers findings on `a` and `a + 1`, matching the
/// application rule in the merge step.)
fn allowed_at(allows: &[FileAllows], fi: usize, rule: &str, line: u32) -> bool {
    allows.get(fi).is_some_and(|v| {
        v.iter()
            .any(|(r, l)| r == rule && (*l == line || l + 1 == line))
    })
}

// ---- T001 ----------------------------------------------------------------

/// What a source function reaches, for diagnostics.
#[derive(Clone)]
struct Taint {
    /// Next function toward the source (`usize::MAX` = this fn is the source).
    via: usize,
    /// Human description of the source (`wall clock: Instant`, ...).
    source: String,
}

/// Lexical nondeterminism source inside a body token range, if any.
fn direct_source(toks: &[Token], b0: usize, b1: usize) -> Option<String> {
    for j in b0..b1.min(toks.len()) {
        let t = &toks[j];
        if t.kind != TokKind::Ident {
            continue;
        }
        let next_is = |c: char| matches!(toks.get(j + 1), Some(n) if n.kind == TokKind::Punct(c));
        let prev_is_path = || {
            j >= 2
                && matches!(toks.get(j - 1), Some(n) if n.kind == TokKind::Punct(':'))
                && matches!(toks.get(j - 2), Some(n) if n.kind == TokKind::Punct(':'))
        };
        match t.text.as_str() {
            "Instant" => return Some("wall clock: Instant".to_string()),
            "SystemTime" => return Some("wall clock: SystemTime".to_string()),
            "thread_rng" => return Some("OS randomness: thread_rng".to_string()),
            "available_parallelism" if next_is('(') || prev_is_path() => {
                return Some("host CPU count: available_parallelism".to_string());
            }
            // `env::var` / `env::var_os` (any path spelled to there).
            "var" | "var_os"
                if prev_is_path()
                    && j >= 3
                    && matches!(toks.get(j - 3), Some(n) if n.kind == TokKind::Ident && n.text == "env") =>
            {
                return Some(format!("environment read: env::{}", t.text));
            }
            "env" | "option_env" if next_is('!') => {
                return Some(format!("environment read: {}!", t.text));
            }
            _ => {}
        }
    }
    None
}

/// T001: backward taint from nondeterminism sources; findings on sim-side
/// library call sites into tainted functions.
fn t001(graph: &Graph<'_>, allows: &[FileAllows], out: &mut Vec<Finding>) {
    let n = graph.fns.len();
    let mut taint: Vec<Option<Taint>> = vec![None; n];
    let mut work: Vec<usize> = Vec::new();
    for (id, slot) in taint.iter_mut().enumerate() {
        let f = graph.fn_item(id);
        let Some((b0, b1)) = f.body else { continue };
        if let Some(src) = direct_source(graph.tokens_of(id), b0, b1) {
            *slot = Some(Taint {
                via: usize::MAX,
                source: src,
            });
            work.push(id);
        }
    }
    // Reverse edges (caller lists per callee), with the sealing rule: an
    // edge whose call site carries a T001 allow does not propagate taint.
    let mut callers: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
    for (caller, edges) in graph.edges.iter().enumerate() {
        for e in edges {
            callers[e.callee].push((caller, e.line));
        }
    }
    while let Some(g) = work.pop() {
        let src = match &taint[g] {
            Some(t) => t.source.clone(),
            None => continue,
        };
        for &(caller, line) in &callers[g] {
            if taint[caller].is_some() {
                continue;
            }
            if allowed_at(allows, graph.fns[caller].file, "T001", line) {
                continue; // sealed edge
            }
            taint[caller] = Some(Taint {
                via: g,
                source: src.clone(),
            });
            work.push(caller);
        }
    }
    // Findings: sim-side library fns with an edge into a tainted fn.
    for id in 0..n {
        let file = graph.file_of(id);
        let f = graph.fn_item(id);
        if file.class.kind != FileKind::Lib || !is_sim_side(&file.class.krate) || f.in_cfg_test {
            continue;
        }
        for e in &graph.edges[id] {
            let Some(t) = &taint[e.callee] else { continue };
            let callee = graph.fn_item(e.callee);
            out.push(Finding {
                rule: "T001",
                file: file.class.path.clone(),
                line: e.line,
                message: format!(
                    "sim-path function `{}` calls `{}`, which reaches a nondeterminism \
                     source ({}) — via {}; route the value through sim state/seeds, or \
                     state why it never does with detlint::allow(T001, why)",
                    f.name,
                    callee.name,
                    t.source,
                    taint_path(graph, &taint, e.callee),
                ),
                allowed: false,
                reason: None,
            });
        }
        // A sim-side function that *itself* reads a source D002 cannot see
        // (host CPU count / environment are handled by D002's env arm only
        // for env) — flag available_parallelism here so it cannot hide.
        if let Some((b0, b1)) = f.body {
            if let Some(src) = direct_source(graph.tokens_of(id), b0, b1) {
                if src.starts_with("host CPU count") {
                    out.push(Finding {
                        rule: "T001",
                        file: file.class.path.clone(),
                        line: f.line,
                        message: format!(
                            "sim-path function `{}` reads a nondeterminism source ({}) — \
                             thread counts must come from configuration, not the host",
                            f.name, src
                        ),
                        allowed: false,
                        reason: None,
                    });
                }
            }
        }
    }
}

/// Render the call chain from `start` down to its source, for messages.
fn taint_path(graph: &Graph<'_>, taint: &[Option<Taint>], start: usize) -> String {
    let mut names = Vec::new();
    let mut cur = start;
    for _ in 0..8 {
        names.push(graph.fn_item(cur).name.clone());
        match taint.get(cur).and_then(|t| t.as_ref()) {
            Some(t) if t.via != usize::MAX => cur = t.via,
            _ => break,
        }
    }
    names.join(" → ")
}

// ---- T002 ----------------------------------------------------------------

const EXPORT_SINKS: &[&str] = &[
    "dump_json",
    "dump_text",
    "dump_stream",
    "write_jsonl",
    "write_chrome_trace",
    "write_par_windows_chrome_trace",
    "to_json",
];

/// T002: `for` loops directly over unordered containers whose bodies hit an
/// order-sensitive sink.
fn t002(graph: &Graph<'_>, out: &mut Vec<Finding>) {
    let fx_names: BTreeSet<String> = ["FxHashMap", "FxHashSet"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    for id in 0..graph.fns.len() {
        let file = graph.file_of(id);
        let f = graph.fn_item(id);
        if file.class.kind == FileKind::Test || f.in_cfg_test {
            continue;
        }
        let Some((b0, b1)) = f.body else { continue };
        let toks = graph.tokens_of(id);
        let body = &toks[b0..b1.min(toks.len())];
        let fx_locals = local_types(body, &fx_names);
        // Digest-typed idents in scope (params + locals) for sink checks.
        let mut digest_idents: BTreeSet<String> = f
            .params
            .iter()
            .filter(|p| p.ty.iter().any(|w| w == "Digest"))
            .map(|p| p.name.clone())
            .collect();
        let digest_names: BTreeSet<String> = ["Digest"].iter().map(|s| s.to_string()).collect();
        for (name, ty) in local_types(body, &digest_names) {
            if ty == "Digest" {
                digest_idents.insert(name);
            }
        }
        let mut j = b0;
        while j < b1.min(toks.len()) {
            if !(toks[j].kind == TokKind::Ident && toks[j].text == "for") {
                j += 1;
                continue;
            }
            // `for<'a>` HRTBs are types, not loops.
            if matches!(toks.get(j + 1), Some(t) if t.kind == TokKind::Punct('<')) {
                j += 1;
                continue;
            }
            // Find the `in` of this loop (same depth, before the body `{`).
            let mut k = j + 1;
            let mut depth = 0i32;
            let mut in_ix = None;
            while k < b1.min(toks.len()) && k < j + 64 {
                match &toks[k].kind {
                    TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                    TokKind::Punct('{') if depth == 0 => break,
                    TokKind::Ident if depth == 0 && toks[k].text == "in" => {
                        in_ix = Some(k);
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            let Some(in_ix) = in_ix else {
                j += 1;
                continue;
            };
            // Iterated expression: tokens up to the body `{` at depth 0.
            let mut e = in_ix + 1;
            let mut depth = 0i32;
            while e < b1.min(toks.len()) {
                match &toks[e].kind {
                    TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                    TokKind::Punct('{') if depth == 0 => break,
                    _ => {}
                }
                e += 1;
            }
            let expr = &toks[in_ix + 1..e.min(toks.len())];
            let Some(container) = unordered_container(graph, file, f, expr, &fx_locals) else {
                j = in_ix + 1;
                continue;
            };
            // Loop body: matching brace of the `{` at `e`.
            let mut depth = 0i32;
            let mut close = e;
            while close < b1.min(toks.len()) {
                match toks[close].kind {
                    TokKind::Punct('{') => depth += 1,
                    TokKind::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                close += 1;
            }
            if let Some(sink) = sink_in(&toks[e..close.min(toks.len())], &digest_idents) {
                out.push(Finding {
                    rule: "T002",
                    file: file.class.path.clone(),
                    line: toks[j].line,
                    message: format!(
                        "loop iterates unordered `{container}` and {sink} — iteration \
                         order is insertion-order dependent; collect and sort the keys \
                         first (see the digest hooks for the sanctioned shape)"
                    ),
                    allowed: false,
                    reason: None,
                });
            }
            j = in_ix + 1;
        }
    }
}

/// Does `expr` iterate an unordered container directly? Returns the
/// container description, or `None` (including when a `sort`-ish helper is
/// visibly involved).
fn unordered_container(
    graph: &Graph<'_>,
    file: &crate::parser::ParsedFile,
    f: &crate::parser::FnItem,
    expr: &[Token],
    fx_locals: &BTreeMap<String, String>,
) -> Option<String> {
    if expr
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text.to_ascii_lowercase().contains("sort"))
    {
        return None;
    }
    for (i, t) in expr.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        // Literal constructor in the expression.
        if t.text == "FxHashMap" || t.text == "FxHashSet" {
            return Some(t.text.clone());
        }
        // `self.field` where the field type is unordered.
        if t.text == "self" && matches!(expr.get(i + 1), Some(n) if n.kind == TokKind::Punct('.')) {
            if let Some(field) = expr.get(i + 2).filter(|n| n.kind == TokKind::Ident) {
                if let Some(ty) = f.self_ty.as_ref() {
                    if let Some(st) = graph.struct_in_crate(&file.class.krate, ty) {
                        if let Some(fld) = st.fields.iter().find(|x| x.name == field.text) {
                            if fld.ty.iter().any(|w| w == "FxHashMap" || w == "FxHashSet") {
                                return Some(format!("self.{}", field.text));
                            }
                        }
                    }
                }
            }
            continue;
        }
        // Param or local with unordered type.
        let prev_dot = i > 0 && matches!(expr.get(i - 1), Some(n) if n.kind == TokKind::Punct('.'));
        if prev_dot {
            continue; // a method/field name, not a binding
        }
        if f.params
            .iter()
            .any(|p| p.name == t.text && p.ty.iter().any(|w| w == "FxHashMap" || w == "FxHashSet"))
            || fx_locals.contains_key(&t.text)
        {
            return Some(t.text.clone());
        }
    }
    None
}

/// Order-sensitive sink inside a loop body, if any.
fn sink_in(body: &[Token], digest_idents: &BTreeSet<String>) -> Option<String> {
    for (j, t) in body.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let next_is_call = matches!(body.get(j + 1), Some(n) if n.kind == TokKind::Punct('('));
        if next_is_call {
            if t.text.starts_with("schedule") {
                return Some(format!("schedules an event (`{}`)", t.text));
            }
            if t.text == "state_digest" || t.text == "digest_into" {
                return Some(format!("feeds a Digest (`{}`)", t.text));
            }
            if EXPORT_SINKS.contains(&t.text.as_str()) {
                return Some(format!("writes an exported artifact (`{}`)", t.text));
            }
        }
        // `d.u64(..)` etc. on a known Digest binding.
        if digest_idents.contains(&t.text)
            && matches!(body.get(j + 1), Some(n) if n.kind == TokKind::Punct('.'))
            && matches!(body.get(j + 2), Some(n) if n.kind == TokKind::Ident)
            && matches!(body.get(j + 3), Some(n) if n.kind == TokKind::Punct('('))
        {
            return Some(format!("feeds a Digest (`{}`)", t.text));
        }
    }
    None
}

// ---- T003 ----------------------------------------------------------------

/// T003: every field of a struct with a `state_digest` hook is digested or
/// explicitly allowed.
fn t003(graph: &Graph<'_>, out: &mut Vec<Finding>) {
    for id in 0..graph.fns.len() {
        let f = graph.fn_item(id);
        if f.name != "state_digest" || f.in_cfg_test {
            continue;
        }
        let file = graph.file_of(id);
        if file.class.kind != FileKind::Lib {
            continue;
        }
        let Some(ty) = f.self_ty.as_ref() else {
            continue;
        };
        let Some(st) = graph.struct_in_crate(&file.class.krate, ty) else {
            continue;
        };
        if st.fields.is_empty() {
            continue;
        }
        // Fields touched by state_digest or any same-type method it
        // (transitively) calls via `self.m(..)`.
        let mut visited: BTreeSet<usize> = BTreeSet::new();
        let mut stack = vec![id];
        let mut touched: BTreeSet<String> = BTreeSet::new();
        while let Some(m) = stack.pop() {
            if !visited.insert(m) {
                continue;
            }
            let mf = graph.fn_item(m);
            let Some((b0, b1)) = mf.body else { continue };
            let toks = graph.tokens_of(m);
            for j in b0..b1.min(toks.len()) {
                if !(toks[j].kind == TokKind::Ident && toks[j].text == "self") {
                    continue;
                }
                if !matches!(toks.get(j + 1), Some(n) if n.kind == TokKind::Punct('.')) {
                    continue;
                }
                let Some(next) = toks.get(j + 2).filter(|n| n.kind == TokKind::Ident) else {
                    continue;
                };
                if st.fields.iter().any(|fl| fl.name == next.text) {
                    touched.insert(next.text.clone());
                }
                // `self.m(..)` — follow methods on the same type.
                if matches!(toks.get(j + 3), Some(n) if n.kind == TokKind::Punct('(')) {
                    for &callee in graph.methods_of(ty, &next.text) {
                        stack.push(callee);
                    }
                }
            }
        }
        // The struct may live in a different file than the impl: findings
        // land on the field's declaration line in the struct's file.
        let struct_file = graph
            .files
            .iter()
            .find(|pf| {
                pf.class.krate == file.class.krate
                    && pf
                        .structs
                        .iter()
                        .any(|s| s.name == st.name && s.line == st.line)
            })
            .map_or(&file.class.path, |pf| &pf.class.path);
        for fl in &st.fields {
            if !touched.contains(&fl.name) {
                out.push(Finding {
                    rule: "T003",
                    file: struct_file.clone(),
                    line: fl.line,
                    message: format!(
                        "field `{}` of `{}` is not folded into `state_digest` — digest \
                         it, or state why it never influences a future transition with \
                         detlint::allow(T003, why)",
                        fl.name, st.name
                    ),
                    allowed: false,
                    reason: None,
                });
            }
        }
    }
}

//! The rule catalog in README.md is the contract surface of the gate:
//! every rule that can appear in the committed report must be documented
//! there, and every rule the analyzer knows must have a catalog row.

use itb_lint::rules::RULES;

fn repo_file(rel: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../");
    std::fs::read_to_string(format!("{path}{rel}")).unwrap_or_else(|e| panic!("reading {rel}: {e}"))
}

/// Rule IDs appearing anywhere in the committed JSON report.
fn report_rules(json: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for part in json.split("\"rule\": \"").skip(1) {
        let id = part.split('"').next().unwrap_or("");
        if !out.iter().any(|r| r == id) {
            out.push(id.to_string());
        }
    }
    out
}

/// Catalog rows look like `| T001 | ... |`.
fn catalog_has_row(readme: &str, rule: &str) -> bool {
    readme.lines().any(|l| {
        let l = l.trim_start();
        l.starts_with(&format!("| {rule} ")) || l.starts_with(&format!("|{rule}"))
    })
}

#[test]
fn every_reported_rule_is_in_the_readme_catalog() {
    let readme = repo_file("README.md");
    let report = repo_file("results/detlint.json");
    let seen = report_rules(&report);
    assert!(!seen.is_empty(), "committed report lists findings");
    for rule in &seen {
        assert!(
            catalog_has_row(&readme, rule),
            "rule {rule} appears in results/detlint.json but has no README catalog row"
        );
    }
}

#[test]
fn every_known_rule_is_in_the_readme_catalog() {
    let readme = repo_file("README.md");
    for rule in RULES {
        assert!(
            catalog_has_row(&readme, rule),
            "rule {rule} is in itb_lint::rules::RULES but has no README catalog row"
        );
    }
}

#[test]
fn report_rules_are_all_known() {
    let report = repo_file("results/detlint.json");
    for rule in report_rules(&report) {
        assert!(
            RULES.contains(&rule.as_str()),
            "results/detlint.json names unknown rule {rule} — regenerate the artifact"
        );
    }
}

// The pinned rate-rounding rule (false-positive corpus): a solved f64
// rate crosses to integer sim time exactly once, through
// ByteInterval::from_rate — which truncates the reciprocal interval via
// SimDuration::from_ns_f64 and therefore rounds the *effective rate* up —
// and every downstream completion/byte computation is integer arithmetic
// on the quantised interval.
use itb_sim::{ByteInterval, SimDuration, SimTime};

pub fn completion_good(rate_bytes_per_ns: f64, remaining: u64, now: SimTime) -> SimTime {
    let interval = ByteInterval::from_rate(rate_bytes_per_ns);
    now + interval.time_for(remaining)
}

pub fn window_bytes_good(window: SimDuration, interval: ByteInterval) -> u64 {
    interval.bytes_in(window)
}

pub fn arrival_gap_good(gap_ns: f64) -> SimDuration {
    // The one sanctioned float -> time crossing.
    SimDuration::from_ns_f64(gap_ns)
}

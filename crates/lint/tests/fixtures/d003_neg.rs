// False-positive corpus for D003.
use itb_sim::{SimDuration, SimTime};

pub fn fine(gap_ns: f64, now: SimTime, d: SimDuration) -> (SimTime, SimDuration, f64, f64) {
    // Integer construction is the normal path.
    let t = SimTime::from_ps(1_000);
    let dd = SimDuration::from_ns(15);
    // The audited quantisation helper takes the float explicitly.
    let q = SimDuration::from_ns_f64(gap_ns);
    // Float readback for *reporting* (not recast to an integer) is fine.
    let report = now.as_ns_f64();
    let us = d.as_us_f64();
    let _ = (dd, q);
    (t, dd, report, us)
}

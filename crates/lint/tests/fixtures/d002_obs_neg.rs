// False-positive corpus for D002 in a sampling path: the sampler keys off
// sim-time nanoseconds handed in by the event queue — no host clock in
// sight, so the artifact stream is a pure function of the seed.
pub struct Sampler {
    interval_ns: u64,
    next_ns: u64,
    samples: u64,
}

impl Sampler {
    pub fn on_sample(&mut self, now_ns: u64) -> bool {
        if now_ns < self.next_ns {
            return false;
        }
        self.next_ns += self.interval_ns;
        self.samples += 1;
        true
    }

    // A profiler stopwatch may read the host clock when the reading lands
    // only in sidecar records and the invariant is stated.
    pub fn stopwatch_ns() -> u128 {
        // detlint::allow(D002, profiler stopwatch: wall-ns lands only in sidecars, never in sim state)
        let t0 = std::time::Instant::now();
        t0.elapsed().as_nanos()
    }
}

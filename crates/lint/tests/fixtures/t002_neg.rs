//! T002 corpus (negative): the sanctioned shapes — collect and sort the
//! keys before the order-sensitive work, or iterate without an
//! order-sensitive sink.

use itb_sim::FxHashMap;

pub struct Waiters {
    pending: FxHashMap<u64, u64>,
}

impl Waiters {
    /// Sorted-first: the loop iterates a sorted `Vec`, not the map.
    pub fn flush(&mut self, now: u64) {
        let mut ids: Vec<u64> = self.pending.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            if let Some(&t) = self.pending.get(&id) {
                schedule_wakeup(id, t.max(now));
            }
        }
    }

    /// Order-insensitive folds over the map are fine: no event, no digest,
    /// no artifact inside the loop body.
    pub fn total(&self) -> u64 {
        let mut sum = 0;
        for (_, &t) in self.pending.iter() {
            sum += t;
        }
        sum
    }
}

fn schedule_wakeup(_id: u64, _t: u64) {}

// True positives for the rate-rounding rule: solved flow rates crossing
// into event time ad hoc, bypassing the ByteInterval quantisation
// boundary. The truncation direction of each call site is then unpinned
// and drifts independently.
use itb_sim::{SimDuration, SimTime};

pub fn completion_bad(rate_bytes_per_ns: f64, remaining: u64, now: SimTime) -> SimTime {
    // Raw float division straight into an integer-time constructor.
    let offset = SimDuration::from_ns((remaining as f64 / rate_bytes_per_ns) as u64);
    now + offset
}

pub fn round_start_bad(now: SimTime) -> u64 {
    // Float readback recast to integer: the same hazard on the read side.
    now.as_ns_f64() as u64
}

//! T002 corpus: a `for` loop directly over an `FxHashMap` whose body
//! schedules an event — iteration order (insertion order) leaks into the
//! event queue.

use itb_sim::FxHashMap;

pub struct Waiters {
    pending: FxHashMap<u64, u64>,
}

impl Waiters {
    /// Wakes every waiter — in map iteration order. Nondeterministic under
    /// any insertion-order change.
    pub fn flush(&mut self, now: u64) {
        for (&id, &t) in self.pending.iter() {
            schedule_wakeup(id, t.max(now));
        }
    }

    /// A digest fed straight from the unordered map is the same hazard.
    pub fn fold(&self, d: &mut itb_sim::Digest) {
        for (&id, &t) in self.pending.iter() {
            d.u64(id);
            d.u64(t);
        }
    }
}

fn schedule_wakeup(_id: u64, _t: u64) {}

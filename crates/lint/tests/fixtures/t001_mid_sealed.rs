//! T001 corpus (negative): the same middle hop with a reasoned allow on
//! the call site. The allow both covers this finding and *seals* the edge,
//! so callers further up are not tainted through it.

/// Measure one section; the reading provably never enters sim state.
pub fn measure_section() -> u64 {
    // detlint::allow(T001, wall reading lands in a bench sidecar only and never enters sim state)
    itb_bench::stopwatch_ns()
}

// True positives for D001: default-hasher std collections.
use std::collections::HashMap;
use std::collections::HashSet;

pub fn build() -> usize {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    let s: std::collections::HashSet<u32> = std::collections::HashSet::new();
    m.len() + s.len()
}

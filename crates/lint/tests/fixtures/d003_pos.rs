// True positives for D003: float arithmetic on event-time values.
use itb_sim::{SimDuration, SimTime};

pub fn hazards(gap_ns: f64, now: SimTime) -> (SimTime, SimDuration, u64) {
    let t = SimTime::from_ps((gap_ns * 1e3) as u64);
    let d = SimDuration::from_ns((gap_ns / 2.0) as u64);
    let ns = now.as_ns_f64() as u64;
    (t, d, ns)
}

// False-positive corpus for S001.
pub fn lib_code(v: Option<u32>) -> u32 {
    // Non-panicking relatives must not match.
    let a = v.unwrap_or(0);
    let b = v.unwrap_or_default();
    // detlint::allow(S001, stated invariant: v checked non-empty by caller)
    let c = v.unwrap();
    let s = "calling .unwrap() in a string is fine";
    let _ = s;
    a + b + c
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let r: Result<u32, ()> = Ok(2);
        assert_eq!(r.expect("fine in tests"), 2);
        if false {
            panic!("also fine in tests");
        }
    }
}

// False-positive corpus for D002.
pub fn timing(now: u64) -> u64 {
    // Instant and SystemTime in a comment are fine; so is an identifier
    // that merely contains the word.
    let instant = now;
    let system_time_like = "Instant::now() in a string";
    instant + system_time_like.len() as u64
}

// An annotated wall-clock section is allowed (reason given).
pub fn wall_clock_ok() -> std::time::Duration {
    // detlint::allow(D002, bench wall-clock measurement outside the sim clock)
    let t0 = std::time::Instant::now();
    t0.elapsed()
}

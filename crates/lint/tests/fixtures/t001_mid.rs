//! T001 corpus: the middle hop — a sim-side (core) helper that forwards a
//! wall-clock reading from the bench crate. Lexically clean: nothing in
//! this file mentions `Instant`, which is exactly what D002 cannot see.

/// Measure one section; looks innocent, reaches the stopwatch.
pub fn measure_section() -> u64 {
    itb_bench::stopwatch_ns()
}

//! T001 corpus: the nondeterminism source — a wall-clock stopwatch helper
//! in the (non-sim) bench crate. The D002 hit is allowed here; T001 is
//! about the *callers* that launder the reading into sim-side code.

/// Wall nanoseconds since `t0` — bench-harness plumbing.
pub fn stopwatch_ns() -> u64 {
    // detlint::allow(D002, bench stopwatch: wall time is the measurement itself)
    let t0 = std::time::Instant::now();
    let n = t0.elapsed().as_nanos();
    u64::try_from(n).unwrap_or(u64::MAX)
}

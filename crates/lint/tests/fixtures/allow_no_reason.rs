// An allow-comment without a reason suppresses nothing and is itself a
// finding (A000).
pub fn lib_code(v: Option<u32>) -> u32 {
    // detlint::allow(S001)
    v.unwrap()
}

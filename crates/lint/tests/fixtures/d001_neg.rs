// False-positive corpus for D001: none of these may be flagged.
// A comment that merely mentions a HashMap is not a finding.
use itb_sim::{FxHashMap, FxHashSet};
use std::collections::{BTreeMap, BTreeSet};

pub fn build() -> usize {
    let mut m: FxHashMap<u32, u32> = FxHashMap::default();
    m.insert(1, 2);
    let s: FxHashSet<u32> = FxHashSet::default();
    let b: BTreeMap<u32, u32> = BTreeMap::new();
    let t: BTreeSet<u32> = BTreeSet::new();
    let msg = "HashMap and HashSet in a string are fine";
    let raw = r#"so is a raw-string "HashSet" mention"#;
    m.len() + s.len() + b.len() + t.len() + msg.len() + raw.len()
}

// True positives for D002 in an observability sampling path: timeline and
// health samplers must advance on scheduled *sim-time* events — a host
// clock read here would make the JSONL artifacts machine-dependent and
// break the double-run byte-compare.
use std::time::Instant;

pub struct Sampler {
    last_ns: u64,
}

impl Sampler {
    pub fn on_sample(&mut self) -> u64 {
        let t0 = Instant::now();
        let _wall = std::time::SystemTime::now();
        self.last_ns = t0.elapsed().as_nanos() as u64;
        self.last_ns
    }
}

//! T003 corpus: a struct with a `state_digest` hook and a behavioral field
//! the digest forgot — the model checker would merge states that diverge.

pub struct PortState {
    credits: u32,
    parked: u64,
    last_seq: u32,
}

impl PortState {
    pub fn state_digest(&self, d: &mut itb_sim::Digest) {
        d.u32(self.credits);
        d.u64(self.parked);
    }

    pub fn advance(&mut self) {
        self.last_seq = self.last_seq.wrapping_add(1);
    }
}

//! D002 negatives for the threading check: lookalikes, annotated spawns
//! and thread mentions that never fork.

/// "thread::spawn" in a comment or a string is not a fork.
pub fn docs_only() -> &'static str {
    "call thread::spawn at your peril"
}

pub struct ThreadPoolStats {
    pub threads: usize,
}

/// A query, not a fork: reading parallelism does not order events.
pub fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

pub fn sanctioned_fork() {
    // detlint::allow(D002, barrier-synchronized worker pool mirroring itb_sim::par)
    let h = std::thread::spawn(|| ());
    let _ = h.join();
}

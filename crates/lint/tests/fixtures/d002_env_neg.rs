//! Negative corpus for the D002 environment arm: lookalikes and sanctioned
//! shapes that must not be flagged in sim-side code.

/// A local binding named `env` is not an environment read.
pub fn lookalike_binding(env: u64) -> u64 {
    env + 1
}

/// Struct fields and method names spelled `var` are fine.
pub struct Sampler {
    pub var: f64,
}

impl Sampler {
    pub fn var_os(&self) -> f64 {
        self.var
    }
}

/// An explicitly reasoned read stays on the audit trail without failing
/// the gate.
pub fn sanctioned_read() -> Option<String> {
    // detlint::allow(D002, test-only escape hatch documented in DESIGN; value never reaches sim state)
    std::env::var("ITB_TRACE").ok()
}

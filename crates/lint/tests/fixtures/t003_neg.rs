//! T003 corpus (negative): every field is either digested — directly or
//! through a helper method on the same type — or carries a reasoned allow.

pub struct PortState {
    credits: u32,
    parked: u64,
    // detlint::allow(T003, diagnostics counter: never read by a transition)
    drops: u64,
}

impl PortState {
    /// Helper the digest delegates to; T003 follows `self.m(..)` calls.
    fn fold_credits(&self, d: &mut itb_sim::Digest) {
        d.u32(self.credits);
    }

    pub fn state_digest(&self, d: &mut itb_sim::Digest) {
        self.fold_credits(d);
        d.u64(self.parked);
    }

    pub fn drop_one(&mut self) {
        self.drops += 1;
    }
}

//! A compliant library crate root.
#![deny(unsafe_code)]

pub fn nothing() {}

// True positives for S001: panicking calls in library code.
pub fn lib_code(v: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = v.unwrap();
    let b = r.expect("should work");
    if a + b == 0 {
        panic!("boom");
    }
    a + b
}

// True positives for S002: narrowing casts in library code.
pub fn narrowing(id: u64, seq: u64, port: usize) -> (u32, u16, u8) {
    let a = id as u32;
    let b = seq as u16;
    let c = port as u8;
    (a, b, c)
}

//! T001 corpus: the sim/event-path entry point, two crates away from the
//! wall-clock read (`gm` → `core` → `bench`). Only the call graph can see
//! this chain.

/// Event-path work that launders a wall reading through two helpers.
pub fn on_tick() -> u64 {
    itb_core::measure_section()
}

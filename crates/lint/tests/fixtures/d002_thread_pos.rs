//! D002 true positives: ad-hoc threading in simulation code.

pub fn race_the_scheduler() {
    let h = std::thread::spawn(|| 1 + 1);
    let _ = h.join();
}

pub fn scoped_race() {
    std::thread::scope(|s| {
        s.spawn(|| ());
    });
}

use std::thread;

pub fn imported_spawn() {
    let _ = thread::spawn(|| ());
}

// True positives for D002: wall clock and OS randomness.
use std::time::Instant;

pub fn timing() -> u64 {
    let t0 = Instant::now();
    let _st = std::time::SystemTime::now();
    let _r = rand::thread_rng();
    t0.elapsed().as_nanos() as u64
}

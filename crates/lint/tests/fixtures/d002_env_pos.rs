//! Positive corpus for the D002 environment arm: env reads in sim-side
//! code are cross-machine nondeterminism.

pub fn shard_count() -> usize {
    std::env::var("ITB_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

pub fn results_root() -> Option<std::ffi::OsString> {
    std::env::var_os("ITB_RESULTS_DIR")
}

pub fn build_id() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

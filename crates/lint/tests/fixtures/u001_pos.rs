//! A library crate root that forgot to deny unsafe code.
pub fn nothing() {}

// False-positive corpus for S002.
use std::collections::BTreeMap as Tree;

pub fn widening(x: u16, y: u32) -> (u64, usize, f64) {
    // Widening and float casts are not narrowing.
    let a = x as u64;
    let b = y as usize;
    let c = y as f64;
    let _t: Tree<u8, u8> = Tree::new();
    (a, b, c)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_narrow() {
        let big: u64 = 7;
        assert_eq!(big as u16, 7u16);
    }
}

//! Scanner edge cases: everything that could fool a grep must not fool the
//! lexer.

use itb_lint::lexer::{lex, TokKind};

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .tokens
        .into_iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text)
        .collect()
}

#[test]
fn comments_are_not_code() {
    let src = "// HashMap here\n/* HashSet /* nested Instant */ still */ let x = 1;";
    assert_eq!(idents(src), vec!["let", "x"]);
    let lexed = lex(src);
    assert_eq!(lexed.comments.len(), 2);
    assert_eq!(lexed.comments[1].line, 2);
}

#[test]
fn strings_are_not_code() {
    let src = r####"let a = "HashMap \" still string"; let b = r#"raw "quote" HashSet"#; let c = b"bytes Instant";"####;
    let ids = idents(src);
    assert!(!ids.contains(&"HashMap".to_string()));
    assert!(!ids.contains(&"HashSet".to_string()));
    assert!(!ids.contains(&"Instant".to_string()));
}

#[test]
fn char_literals_vs_lifetimes() {
    let src = "fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; let q = '\\''; }";
    let lexed = lex(src);
    let lifetimes = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .count();
    let chars = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Char)
        .count();
    assert_eq!(lifetimes, 2);
    assert_eq!(chars, 3);
}

#[test]
fn float_vs_integer_literals() {
    let is = |src: &str, kind: TokKind| {
        let toks = lex(src).tokens;
        assert_eq!(toks.len(), 1, "{src}");
        assert_eq!(toks[0].kind, kind, "{src}");
    };
    is("1.0", TokKind::Float);
    is("1e3", TokKind::Float);
    is("2.5e-7", TokKind::Float);
    is("3f64", TokKind::Float);
    is("42", TokKind::Int);
    is("1_000u64", TokKind::Int);
    is("0x1e3", TokKind::Int); // hex 'e' is a digit, not an exponent
    is("0b1010", TokKind::Int);
}

#[test]
fn method_call_on_int_is_not_a_float() {
    let toks = lex("1.max(2)").tokens;
    assert_eq!(toks[0].kind, TokKind::Int);
    assert!(toks
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "max"));
}

#[test]
fn line_numbers_survive_multiline_constructs() {
    let src = "let a = \"two\nlines\";\nlet b = 1;";
    let lexed = lex(src);
    let b = lexed
        .tokens
        .iter()
        .find(|t| t.text == "b")
        .expect("ident b");
    assert_eq!(b.line, 3);
}

#[test]
fn raw_string_fences_respected() {
    // The "# inside the raw string must not close it (fence is ##).
    let src = "let s = r##\"contains \"# inner\"##; let after = 1;";
    let ids = idents(src);
    assert!(ids.contains(&"after".to_string()));
    assert!(!ids.contains(&"inner".to_string()));
}

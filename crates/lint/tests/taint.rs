//! Fixture-based tests for the detlint v2 pipeline: the cross-crate taint
//! rules (T001–T003), the call-graph stats, fingerprint stability, and the
//! gate contract that a seeded violation in each class fails the analysis.

use itb_lint::rules::{classify, lint_source, Finding};
use itb_lint::Workspace;

fn fixture(name: &str) -> String {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/");
    std::fs::read_to_string(format!("{dir}{name}"))
        .unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

/// Lint one fixture as a single-file workspace under a synthetic path.
fn lint_fixture(as_path: &str, name: &str) -> Vec<Finding> {
    let class = classify(as_path).unwrap_or_else(|| panic!("path {as_path} must classify"));
    lint_source(&class, &fixture(name))
}

fn unallowed<'a>(fs: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    fs.iter().filter(|f| f.rule == rule && !f.allowed).collect()
}

/// The three-crate T001 corpus: gm → core → bench, wall clock at the far
/// end. `mid` selects the middle hop (plain or allow-sealed).
fn t001_workspace(mid: &str) -> Workspace {
    let mut ws = Workspace::new();
    assert!(ws.add("crates/bench/src/util.rs", fixture("t001_src_helper.rs")));
    assert!(ws.add("crates/core/src/timing.rs", fixture(mid)));
    assert!(ws.add("crates/gm/src/probe.rs", fixture("t001_entry.rs")));
    ws
}

// ---- T001 ----------------------------------------------------------------

#[test]
fn t001_sees_a_source_two_crates_away() {
    let report = t001_workspace("t001_mid.rs").analyze();
    let t1 = unallowed(&report.findings, "T001");
    // Both sim-side hops are flagged: the gm entry point and the core
    // middleman. The bench helper itself is not sim-side.
    assert_eq!(t1.len(), 2, "{t1:?}");
    let entry = t1
        .iter()
        .find(|f| f.file == "crates/gm/src/probe.rs")
        .expect("gm entry point flagged");
    assert!(
        entry.message.contains("measure_section → stopwatch_ns"),
        "message names the taint chain: {}",
        entry.message
    );
    assert!(
        entry.message.contains("wall clock: Instant"),
        "{}",
        entry.message
    );
    assert!(t1.iter().any(|f| f.file == "crates/core/src/timing.rs"));
    // This is the gate contract: a seeded cross-crate laundering violation
    // leaves the report failing.
    assert!(report.unallowed().count() >= 2);
}

#[test]
fn t001_allow_seals_the_edge_for_callers() {
    let report = t001_workspace("t001_mid_sealed.rs").analyze();
    // The middle hop's finding is allowed, and the allow stops propagation:
    // the gm caller is clean, so the workspace passes.
    assert_eq!(
        unallowed(&report.findings, "T001").len(),
        0,
        "{:?}",
        report.findings
    );
    let sealed: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "T001" && f.allowed)
        .collect();
    assert_eq!(
        sealed.len(),
        1,
        "audit trail keeps the allowed finding: {sealed:?}"
    );
    assert_eq!(sealed[0].file, "crates/core/src/timing.rs");
}

#[test]
fn t001_lexical_d002_alone_misses_the_middle_hop() {
    // The property that motivates the call graph: the middle hop is
    // lexically spotless, so the per-line rules say nothing about it.
    let fs = lint_fixture("crates/core/src/timing.rs", "t001_mid.rs");
    assert!(unallowed(&fs, "D002").is_empty(), "{fs:?}");
}

// ---- T002 ----------------------------------------------------------------

#[test]
fn t002_flags_unordered_iteration_into_event_and_digest() {
    let fs = lint_fixture("crates/net/src/sched.rs", "t002_pos.rs");
    let t2 = unallowed(&fs, "T002");
    assert_eq!(t2.len(), 2, "schedule sink + digest sink: {t2:?}");
    assert!(t2.iter().any(|f| f.message.contains("schedules an event")));
    assert!(t2.iter().any(|f| f.message.contains("feeds a Digest")));
    assert!(t2.iter().all(|f| f.message.contains("self.pending")));
}

#[test]
fn t002_passes_sorted_first_and_order_insensitive_loops() {
    let fs = lint_fixture("crates/net/src/sched.rs", "t002_neg.rs");
    assert!(unallowed(&fs, "T002").is_empty(), "{fs:?}");
}

// ---- T003 ----------------------------------------------------------------

#[test]
fn t003_flags_a_field_missing_from_the_digest() {
    let fs = lint_fixture("crates/net/src/port.rs", "t003_pos.rs");
    let t3 = unallowed(&fs, "T003");
    assert_eq!(t3.len(), 1, "{t3:?}");
    assert!(t3[0].message.contains("`last_seq`"), "{}", t3[0].message);
    assert!(t3[0].message.contains("`PortState`"), "{}", t3[0].message);
}

#[test]
fn t003_follows_helper_methods_and_honours_allows() {
    let fs = lint_fixture("crates/net/src/port.rs", "t003_neg.rs");
    assert!(unallowed(&fs, "T003").is_empty(), "{fs:?}");
    // The allowed diagnostics field stays on the audit trail.
    assert!(fs.iter().any(|f| f.rule == "T003" && f.allowed));
}

// ---- D002 env arm --------------------------------------------------------

#[test]
fn d002_flags_env_reads_in_sim_code() {
    let fs = lint_fixture("crates/sim/src/cfgload.rs", "d002_env_pos.rs");
    let hits = unallowed(&fs, "D002");
    assert_eq!(hits.len(), 3, "env::var, env::var_os, env!: {hits:?}");
    assert!(hits.iter().all(|f| f.message.contains("environment read")));
}

#[test]
fn d002_env_spares_lookalikes_allows_and_benches() {
    let fs = lint_fixture("crates/sim/src/cfgload.rs", "d002_env_neg.rs");
    assert!(unallowed(&fs, "D002").is_empty(), "{fs:?}");
    // The same positive corpus under a bench path is exempt wholesale
    // (ITB_THREADS is the sanctioned perf-harness knob).
    let fs = lint_fixture("crates/sim/benches/threads.rs", "d002_env_pos.rs");
    assert!(unallowed(&fs, "D002").is_empty(), "{fs:?}");
    let fs = lint_fixture("crates/bench/src/lib.rs", "d002_env_pos.rs");
    assert!(unallowed(&fs, "D002").is_empty(), "{fs:?}");
}

// ---- pipeline plumbing ---------------------------------------------------

#[test]
fn callgraph_stats_are_populated() {
    let report = t001_workspace("t001_mid.rs").analyze();
    assert_eq!(report.files_scanned, 3);
    assert!(report.stats.functions >= 3, "{:?}", report.stats);
    assert!(
        report.stats.edges >= 2,
        "two cross-crate edges: {:?}",
        report.stats
    );
    assert!(report.stats.resolved_calls >= 2, "{:?}", report.stats);
}

#[test]
fn fingerprints_survive_line_drift() {
    let base = t001_workspace("t001_mid.rs").analyze();
    // Shift every line in the entry file by prepending comments; findings
    // move, fingerprints must not.
    let mut ws = Workspace::new();
    assert!(ws.add("crates/bench/src/util.rs", fixture("t001_src_helper.rs")));
    assert!(ws.add("crates/core/src/timing.rs", fixture("t001_mid.rs")));
    let shifted = format!(
        "// shifted\n// shifted\n// shifted\n{}",
        fixture("t001_entry.rs")
    );
    assert!(ws.add("crates/gm/src/probe.rs", shifted));
    let drifted = ws.analyze();

    let key = |r: &itb_lint::LintReport| {
        let fps = r.fingerprints();
        let mut v: Vec<(String, u64)> = r
            .findings
            .iter()
            .zip(fps)
            .map(|(f, fp)| (format!("{}:{}", f.rule, f.file), fp))
            .collect();
        v.sort();
        v
    };
    assert_eq!(key(&base), key(&drifted));
    // ...while the lines did in fact move.
    let line_of = |r: &itb_lint::LintReport| {
        r.findings
            .iter()
            .find(|f| f.file == "crates/gm/src/probe.rs")
            .map(|f| f.line)
    };
    assert_ne!(line_of(&base), line_of(&drifted));
}

#[test]
fn report_json_carries_v2_fields() {
    let report = t001_workspace("t001_mid.rs").analyze();
    let json = report.to_json();
    assert!(json.contains("\"version\": 2"), "{json}");
    assert!(json.contains("\"callgraph\": {\"functions\""), "{json}");
    assert!(json.contains("\"fingerprint\": \""), "{json}");
    assert!(json.contains("\"wall_ms\": 0"), "{json}");
}

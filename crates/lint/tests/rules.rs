//! Fixture-based tests for the detlint rule set: every rule has at least
//! one true-positive and one false-positive corpus, plus tests for the
//! allow-comment contract (a reason is mandatory) and the classifier.

use itb_lint::rules::{classify, lint_source, Finding};

/// Lint a fixture file under a synthetic workspace-relative path (the path
/// drives crate/kind classification, not where the fixture actually lives).
fn lint_fixture(as_path: &str, fixture: &str) -> Vec<Finding> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/");
    let src = std::fs::read_to_string(format!("{dir}{fixture}"))
        .unwrap_or_else(|e| panic!("fixture {fixture}: {e}"));
    let class = classify(as_path).unwrap_or_else(|| panic!("path {as_path} must classify"));
    lint_source(&class, &src)
}

fn unallowed<'a>(fs: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    fs.iter().filter(|f| f.rule == rule && !f.allowed).collect()
}

// ---- D001 ----------------------------------------------------------------

#[test]
fn d001_flags_default_hasher_maps() {
    let fs = lint_fixture("crates/gm/src/code.rs", "d001_pos.rs");
    let hits = unallowed(&fs, "D001");
    assert_eq!(hits.len(), 4, "two use-decls + two body lines: {hits:?}");
    assert!(hits.iter().any(|f| f.message.contains("HashMap")));
    assert!(hits.iter().any(|f| f.message.contains("HashSet")));
}

#[test]
fn d001_ignores_fx_btree_strings_and_comments() {
    let fs = lint_fixture("crates/gm/src/code.rs", "d001_neg.rs");
    assert!(unallowed(&fs, "D001").is_empty(), "{fs:?}");
}

#[test]
fn d001_exempts_the_fxmap_wrapper_itself() {
    let src = "use std::collections::HashMap;\npub type M = HashMap<u8, u8>;\n";
    let class = classify("crates/sim/src/fxmap.rs").expect("classifies");
    assert!(lint_source(&class, src).iter().all(|f| f.rule != "D001"));
}

// ---- D002 ----------------------------------------------------------------

#[test]
fn d002_flags_wall_clock_and_os_rng() {
    let fs = lint_fixture("crates/nic/src/code.rs", "d002_pos.rs");
    // `Instant` twice (use + now), SystemTime, thread_rng.
    assert_eq!(unallowed(&fs, "D002").len(), 4, "{fs:?}");
}

#[test]
fn d002_ignores_lookalikes_and_honours_allow() {
    let fs = lint_fixture("crates/nic/src/code.rs", "d002_neg.rs");
    assert!(unallowed(&fs, "D002").is_empty(), "{fs:?}");
    // The annotated wall-clock line must surface as an *allowed* finding
    // with its reason attached (audit trail, not silence).
    let allowed: Vec<_> = fs
        .iter()
        .filter(|f| f.rule == "D002" && f.allowed)
        .collect();
    assert_eq!(allowed.len(), 1);
    assert!(allowed[0]
        .reason
        .as_deref()
        .is_some_and(|r| r.contains("bench wall-clock")));
}

#[test]
fn d002_flags_thread_spawn_in_sim_code() {
    let fs = lint_fixture("crates/nic/src/code.rs", "d002_thread_pos.rs");
    // std::thread::spawn, std::thread::scope, imported thread::spawn.
    let hits = unallowed(&fs, "D002");
    assert_eq!(hits.len(), 3, "{hits:?}");
    assert!(hits.iter().all(|f| f.message.contains("run_shards")));
}

#[test]
fn d002_thread_check_spares_lookalikes_and_benches() {
    let fs = lint_fixture("crates/nic/src/code.rs", "d002_thread_neg.rs");
    assert!(unallowed(&fs, "D002").is_empty(), "{fs:?}");
    // The annotated spawn stays on the audit trail as an allowed finding.
    assert_eq!(
        fs.iter().filter(|f| f.rule == "D002" && f.allowed).count(),
        1
    );
    // The same forks in a bench target are measurement harness, not model.
    let fs = lint_fixture("crates/gm/benches/code.rs", "d002_thread_pos.rs");
    assert!(unallowed(&fs, "D002").is_empty(), "{fs:?}");
    let fs = lint_fixture("crates/bench/src/code.rs", "d002_thread_pos.rs");
    assert!(unallowed(&fs, "D002").is_empty(), "{fs:?}");
}

#[test]
fn d002_flags_wall_clock_in_obs_sampling_paths() {
    // The observability samplers (obs::timeline, obs::health) are exactly
    // where a wall-clock read would silently wreck artifact determinism;
    // prove the rule fires there like anywhere else.
    let fs = lint_fixture("crates/obs/src/timeline.rs", "d002_obs_pos.rs");
    // `Instant` twice (use + now) + SystemTime.
    assert_eq!(unallowed(&fs, "D002").len(), 3, "{fs:?}");
    let fs = lint_fixture("crates/obs/src/health.rs", "d002_obs_pos.rs");
    assert_eq!(unallowed(&fs, "D002").len(), 3, "{fs:?}");
}

#[test]
fn d002_passes_sim_time_sampling_and_reasoned_stopwatch() {
    let fs = lint_fixture("crates/obs/src/timeline.rs", "d002_obs_neg.rs");
    assert!(unallowed(&fs, "D002").is_empty(), "{fs:?}");
    // The annotated profiler stopwatch stays on the audit trail.
    let allowed: Vec<_> = fs
        .iter()
        .filter(|f| f.rule == "D002" && f.allowed)
        .collect();
    assert_eq!(allowed.len(), 1, "{fs:?}");
    assert!(allowed[0]
        .reason
        .as_deref()
        .is_some_and(|r| r.contains("profiler stopwatch")));
}

// ---- D003 ----------------------------------------------------------------

#[test]
fn d003_flags_float_time_arithmetic() {
    let fs = lint_fixture("crates/gm/src/code.rs", "d003_pos.rs");
    // from_ps(float), from_ns(float), as_ns_f64 recast.
    assert_eq!(unallowed(&fs, "D003").len(), 3, "{fs:?}");
}

#[test]
fn d003_allows_integer_time_and_audited_helpers() {
    let fs = lint_fixture("crates/gm/src/code.rs", "d003_neg.rs");
    assert!(unallowed(&fs, "D003").is_empty(), "{fs:?}");
}

// The hybrid engine's rate-rounding rule, pinned as a fixture pair: a
// solved f64 flow rate must cross to integer sim time exactly once,
// through `ByteInterval::from_rate` (truncate the reciprocal interval →
// round the effective rate up); ad-hoc float-to-time crossings in rate
// code are D003 findings.
#[test]
fn d003_flags_ad_hoc_rate_to_time_crossings() {
    let fs = lint_fixture("crates/net/src/code.rs", "rate_quant_pos.rs");
    // from_ns(float expr) in the completion calc + as_ns_f64 recast.
    assert_eq!(unallowed(&fs, "D003").len(), 2, "{fs:?}");
}

#[test]
fn d003_accepts_byteinterval_quantisation() {
    let fs = lint_fixture("crates/net/src/code.rs", "rate_quant_neg.rs");
    assert!(unallowed(&fs, "D003").is_empty(), "{fs:?}");
}

#[test]
fn d003_only_applies_to_sim_side_crates() {
    let fs = lint_fixture("crates/lint/src/code.rs", "d003_pos.rs");
    assert!(
        unallowed(&fs, "D003").is_empty(),
        "lint crate is not sim-side"
    );
}

// ---- S001 ----------------------------------------------------------------

#[test]
fn s001_flags_library_panics() {
    let fs = lint_fixture("crates/net/src/code.rs", "s001_pos.rs");
    let hits = unallowed(&fs, "S001");
    assert_eq!(hits.len(), 3, "unwrap + expect + panic!: {hits:?}");
}

#[test]
fn s001_ignores_nonpanicking_tests_and_reasoned_allows() {
    let fs = lint_fixture("crates/net/src/code.rs", "s001_neg.rs");
    assert!(unallowed(&fs, "S001").is_empty(), "{fs:?}");
}

#[test]
fn s001_does_not_apply_to_tests_bins_or_benches() {
    for path in [
        "crates/net/tests/e2e.rs",
        "crates/bench/src/bin/tool.rs",
        "crates/bench/benches/b.rs",
        "examples/demo.rs",
    ] {
        let fs = lint_fixture(path, "s001_pos.rs");
        assert!(unallowed(&fs, "S001").is_empty(), "{path}: {fs:?}");
    }
}

// ---- S002 ----------------------------------------------------------------

#[test]
fn s002_flags_narrowing_casts() {
    let fs = lint_fixture("crates/routing/src/code.rs", "s002_pos.rs");
    assert_eq!(unallowed(&fs, "S002").len(), 3, "{fs:?}");
}

#[test]
fn s002_ignores_widening_floats_and_test_code() {
    let fs = lint_fixture("crates/routing/src/code.rs", "s002_neg.rs");
    assert!(unallowed(&fs, "S002").is_empty(), "{fs:?}");
}

// ---- U001 ----------------------------------------------------------------

#[test]
fn u001_requires_deny_unsafe_in_crate_roots() {
    let fs = lint_fixture("crates/topo/src/lib.rs", "u001_pos.rs");
    assert_eq!(unallowed(&fs, "U001").len(), 1, "{fs:?}");
}

#[test]
fn u001_satisfied_by_deny_attribute() {
    let fs = lint_fixture("crates/topo/src/lib.rs", "u001_neg.rs");
    assert!(unallowed(&fs, "U001").is_empty(), "{fs:?}");
}

#[test]
fn u001_only_checks_crate_roots() {
    let fs = lint_fixture("crates/topo/src/graph.rs", "u001_pos.rs");
    assert!(unallowed(&fs, "U001").is_empty(), "non-root file: {fs:?}");
}

// ---- allow-comment contract ---------------------------------------------

#[test]
fn allow_without_reason_is_a_finding_and_suppresses_nothing() {
    let fs = lint_fixture("crates/net/src/code.rs", "allow_no_reason.rs");
    assert_eq!(unallowed(&fs, "A000").len(), 1, "{fs:?}");
    assert_eq!(
        unallowed(&fs, "S001").len(),
        1,
        "reasonless allow must not suppress the unwrap: {fs:?}"
    );
}

#[test]
fn allow_with_unknown_rule_is_a_finding() {
    let src = "// detlint::allow(D999, not a real rule)\npub fn f() {}\n";
    let class = classify("crates/net/src/code.rs").expect("classifies");
    let fs = lint_source(&class, src);
    assert_eq!(unallowed(&fs, "A000").len(), 1, "{fs:?}");
}

// ---- classifier ----------------------------------------------------------

#[test]
fn classifier_scopes_and_skips() {
    assert!(
        classify("vendor/rand/src/lib.rs").is_none(),
        "vendor skipped"
    );
    assert!(
        classify("crates/lint/tests/fixtures/d001_pos.rs").is_none(),
        "fixtures skipped"
    );
    assert!(classify("crates/sim/src/engine.rs").is_some());
    let root = classify("tests/testbed.rs").expect("root package tests");
    assert_eq!(root.krate, "itb-myrinet");
    assert_eq!(
        classify("crates/bench/src/bin/fig7.rs").map(|c| c.krate),
        Some("bench".to_string())
    );
}

//! Fixture-driven regression tests: known schedules replayed end to end
//! with every per-state invariant checked along the way.
//!
//! The fixtures are plain-text action schedules (see `itb_check::action`)
//! captured from checker runs; they pin the reliability layer's behavior
//! under concrete loss schedules so a future regression reproduces
//! deterministically from a committed file rather than a re-discovered
//! search.

use itb_check::action::parse_schedule;
use itb_check::invariants::{check_state, check_terminal};
use itb_check::Scenario;

/// Replay `schedule` on a fresh build of `sc`, asserting every reached
/// state (and the terminal) is invariant-clean. Returns the final state.
fn replay_checked(sc: &Scenario, schedule: &str) -> itb_check::CheckState {
    let path = parse_schedule(schedule).expect("fixture must parse");
    let mut st = sc.build();
    for (i, &a) in path.iter().enumerate() {
        assert!(st.apply(a), "fixture action {i} ({a}) failed to apply");
        assert_eq!(
            check_state(&st.cluster, sc.num_hosts()),
            None,
            "invariant broken after fixture action {i} ({a})"
        );
    }
    assert!(
        st.queue.is_empty(),
        "fixture must run its scenario to quiescence"
    );
    assert_eq!(
        check_terminal(&st.cluster, &st.queue),
        None,
        "fixture terminal must not be a deadlock"
    );
    st
}

#[test]
fn drop_recover_fixture_delivers_exactly_once() {
    let sc = Scenario::two_host(1);
    let st = replay_checked(&sc, include_str!("fixtures/drop_recover.txt"));
    // One mid-flight corruption, go-back-N recovery: delivered exactly once.
    assert_eq!(st.cluster.delivered_count(), 1);
    assert!(st.cluster.connection_failures().is_empty());
    assert!(!st.cluster.traffic_pending());
    assert_eq!(st.cluster.delivery_log().len(), 1);
}

#[test]
fn kill_flow_fixture_surfaces_failure_not_deadlock() {
    let sc = Scenario::two_host(1);
    let st = replay_checked(&sc, include_str!("fixtures/kill_flow.txt"));
    // Every data packet dropped until max_retries trips: GM must surface a
    // connection failure (no silent deadlock) and deliver nothing.
    assert_eq!(st.cluster.delivered_count(), 0);
    assert_eq!(
        st.cluster.connection_failures(),
        &[(itb_topo::HostId(0), itb_topo::HostId(1))]
    );
}

//! Counterexample-replay coverage: a known-bad schedule must round-trip
//! through the Chrome-trace exporter, byte-stable across a double run.

use itb_check::action::parse_schedule;
use itb_check::replay::chrome_trace;
use itb_check::Scenario;

#[test]
fn kill_flow_trace_is_byte_stable_and_nonempty() {
    let path = parse_schedule(include_str!("fixtures/kill_flow.txt")).expect("fixture must parse");
    let a = chrome_trace(&Scenario::two_host(1), &path);
    let b = chrome_trace(&Scenario::two_host(1), &path);
    assert_eq!(a, b, "trace replay must be byte-deterministic");
    assert!(a.contains("\"traceEvents\""));
    assert!(a.contains("inject"), "trace must record packet injections");
    // The schedule corrupts packets; the trace must carry the drops too.
    assert!(
        a.len() > 1000,
        "trace suspiciously small: {} bytes",
        a.len()
    );
}

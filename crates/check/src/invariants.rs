//! The safety invariants asserted in every explored state.

use itb_gm::cluster::ClusterEvent;
use itb_gm::Cluster;
use itb_sim::{narrow, EventQueue, FxHashMap, FxHashSet};
use itb_topo::HostId;

/// Which invariant a violating state breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantKind {
    /// A message id appeared more than once in the application delivery
    /// log (exactly-once broken).
    DuplicateDelivery,
    /// A flow delivered a message id not larger than its predecessor
    /// (in-order broken).
    OutOfOrderDelivery,
    /// A NIC's receive pool lost conservation:
    /// `recv_free + recv_owned != recv_total`.
    RecvBufferLeak,
    /// A NIC's send pool lost conservation:
    /// `send_free + staging_jobs != send_total`.
    SendBufferLeak,
    /// The event queue drained with traffic still pending and no recorded
    /// connection failure: nothing can ever make progress again.
    Deadlock,
}

impl InvariantKind {
    /// Stable artifact string.
    pub fn as_str(&self) -> &'static str {
        match self {
            InvariantKind::DuplicateDelivery => "duplicate_delivery",
            InvariantKind::OutOfOrderDelivery => "out_of_order_delivery",
            InvariantKind::RecvBufferLeak => "recv_buffer_leak",
            InvariantKind::SendBufferLeak => "send_buffer_leak",
            InvariantKind::Deadlock => "deadlock",
        }
    }
}

/// One invariant violation observed in a concrete state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant broke.
    pub kind: InvariantKind,
    /// Deterministic human-readable description of the broken state.
    pub detail: String,
}

/// Audit a delivery log for the exactly-once and in-order invariants.
/// Public so the checker's own detectors are directly testable against
/// fabricated logs (the shipped scenarios never produce a violating one).
pub fn audit_delivery_log(log: &[(HostId, HostId, u32)]) -> Option<Violation> {
    // Exactly-once: no message id delivered twice, anywhere.
    let mut seen: FxHashSet<u32> = FxHashSet::default();
    for &(from, to, id) in log {
        if !seen.insert(id) {
            return Some(Violation {
                kind: InvariantKind::DuplicateDelivery,
                detail: format!(
                    "msg {id} delivered more than once (latest on flow h{}->h{})",
                    from.idx(),
                    to.idx()
                ),
            });
        }
    }
    // In-order: per (sender, receiver) flow, ids strictly increase.
    let mut last: FxHashMap<(u16, u16), u32> = FxHashMap::default();
    for &(from, to, id) in log {
        if let Some(&prev) = last.get(&(from.0, to.0)) {
            if id <= prev {
                return Some(Violation {
                    kind: InvariantKind::OutOfOrderDelivery,
                    detail: format!(
                        "flow h{}->h{} delivered msg {id} after msg {prev}",
                        from.idx(),
                        to.idx()
                    ),
                });
            }
        }
        last.insert((from.0, to.0), id);
    }
    None
}

/// Check the per-state invariants (exactly-once, in-order, buffer
/// conservation) on a cluster with `hosts` hosts. Returns the first
/// violation in a fixed audit order, or `None` when the state is clean.
pub fn check_state(c: &Cluster, hosts: usize) -> Option<Violation> {
    if let Some(v) = audit_delivery_log(c.delivery_log()) {
        return Some(v);
    }
    // Buffer conservation on every NIC, through every path including crash
    // flushes and deferred heads.
    for h in 0..hosts {
        let nic = c.nic(HostId(narrow(h)));
        let a = nic.buffer_audit();
        if a.recv_free + a.recv_owned != a.recv_total {
            return Some(Violation {
                kind: InvariantKind::RecvBufferLeak,
                detail: format!(
                    "nic {h}: recv_free {} + recv_owned {} != recv_total {}",
                    a.recv_free, a.recv_owned, a.recv_total
                ),
            });
        }
        let staging = nic
            .send_queue_debug()
            .iter()
            .filter(|&&(_, staging, _, _, _)| staging)
            .count() as u64;
        if a.send_free + staging != a.send_total {
            return Some(Violation {
                kind: InvariantKind::SendBufferLeak,
                detail: format!(
                    "nic {h}: send_free {} + staging {staging} != send_total {}",
                    a.send_free, a.send_total
                ),
            });
        }
    }
    None
}

/// Check the terminal-state invariant: a drained queue must mean either
/// every message was delivered or a connection failure was surfaced —
/// never a silent deadlock. Returns `None` for non-terminal states.
pub fn check_terminal(c: &Cluster, q: &EventQueue<ClusterEvent>) -> Option<Violation> {
    if !q.is_empty() {
        return None;
    }
    if c.traffic_pending() && c.connection_failures().is_empty() {
        return Some(Violation {
            kind: InvariantKind::Deadlock,
            detail: format!(
                "queue drained with traffic pending and no failure surfaced; blocked: [{}]",
                c.blocked_set().join("; ")
            ),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use crate::Action;

    #[test]
    fn clean_root_state_passes() {
        let sc = Scenario::two_host(1);
        let st = sc.build();
        assert_eq!(check_state(&st.cluster, sc.num_hosts()), None);
        assert_eq!(check_terminal(&st.cluster, &st.queue), None);
    }

    #[test]
    fn duplicate_delivery_is_detected() {
        let log = [
            (HostId(0), HostId(1), 0),
            (HostId(0), HostId(1), 1),
            (HostId(0), HostId(1), 1),
        ];
        let v = audit_delivery_log(&log).expect("duplicate must be flagged");
        assert_eq!(v.kind, InvariantKind::DuplicateDelivery);
        assert!(v.detail.contains("msg 1"));
    }

    #[test]
    fn out_of_order_delivery_is_detected() {
        let log = [
            (HostId(0), HostId(1), 0),
            (HostId(0), HostId(1), 2),
            (HostId(0), HostId(1), 1),
        ];
        let v = audit_delivery_log(&log).expect("reordering must be flagged");
        assert_eq!(v.kind, InvariantKind::OutOfOrderDelivery);
        assert!(v.detail.contains("msg 1 after msg 2"));
    }

    #[test]
    fn interleaved_flows_do_not_false_positive() {
        // Two flows interleaved: ids only need order *within* a flow.
        let log = [
            (HostId(0), HostId(1), 0),
            (HostId(1), HostId(0), 1),
            (HostId(0), HostId(1), 2),
            (HostId(1), HostId(0), 3),
        ];
        assert_eq!(audit_delivery_log(&log), None);
    }

    #[test]
    fn deadlock_detector_fires_on_a_fabricated_stuck_state() {
        let sc = Scenario::two_host(1);
        let mut st = sc.build();
        // Dispatch the first event (the application send, which records an
        // undelivered message), then discard every remaining event without
        // handling it: traffic is pending, nothing is scheduled, and no
        // failure was surfaced — the deadlock signature.
        assert!(st.apply(Action::Step));
        while st.queue.pop().is_some() {}
        let v = check_terminal(&st.cluster, &st.queue).expect("stuck state must be flagged");
        assert_eq!(v.kind, InvariantKind::Deadlock);
        assert!(v.detail.contains("undelivered"), "{}", v.detail);
    }

    #[test]
    fn faultfree_run_terminates_clean() {
        let sc = Scenario::two_host(2);
        let mut st = sc.build();
        while st.apply(Action::Step) {
            assert_eq!(
                check_state(&st.cluster, sc.num_hosts()),
                None,
                "after {} deliveries",
                st.cluster.delivery_log().len()
            );
        }
        assert_eq!(check_terminal(&st.cluster, &st.queue), None);
        assert_eq!(st.cluster.delivered_count(), 2);
        assert!(!st.cluster.traffic_pending());
    }
}

//! Counterexample replay: render a schedule as a packet-lifecycle Chrome
//! trace (openable in Perfetto / `chrome://tracing`) for human diagnosis.

use crate::action::Action;
use crate::scenario::Scenario;

/// Replay `path` on a fresh build of `sc` with the packet tracer enabled
/// and return the Chrome trace document. Deterministic: the same scenario
/// and schedule produce a byte-identical trace, which the regression suite
/// pins with a double-run comparison.
pub fn chrome_trace(sc: &Scenario, path: &[Action]) -> String {
    let mut st = sc.build();
    st.cluster.net.tracer_mut().enable();
    for &a in path {
        // Inapplicable actions are skipped, so fixtures longer than the
        // current event horizon replay without error.
        let _ = st.apply(a);
    }
    itb_obs::export::to_chrome_trace(st.cluster.net.tracer())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_contains_packet_lifecycles() {
        let sc = Scenario::two_host(1);
        let path = vec![Action::Step; 200];
        let doc = chrome_trace(&sc, &path);
        assert!(doc.contains("traceEvents"));
        assert!(doc.contains("inject"), "trace must show packet stages");
    }
}

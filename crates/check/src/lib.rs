//! Depth-bounded exhaustive interleaving model checker for the GM
//! reliability layer.
//!
//! The deterministic simulator doubles as a transition function: from a
//! small scenario (a 2-host chain, or the paper's Figure 6 testbed on the
//! ITB path) the checker enumerates **every** interleaving of event
//! deliveries and fault injections — packet drops, link outages, NIC
//! crashes — up to a depth bound, and asserts the reliability layer's
//! safety invariants in every reached state:
//!
//! * **exactly-once delivery** — no message id appears twice in the
//!   application delivery log;
//! * **in-order delivery** — per `(sender, receiver)` flow, delivered
//!   message ids are strictly increasing;
//! * **buffer-accounting conservation** — on every NIC,
//!   `recv_free + recv_owned == recv_total` and
//!   `send_free + staging_jobs == send_total`, through every path
//!   including crash flushes and deferred heads;
//! * **no silent deadlock** — a drained event queue with traffic still
//!   pending and no recorded connection failure is a stuck state.
//!
//! # How the state space stays tractable
//!
//! A [`Step`](Action::Step) — pop the next event and dispatch it — is
//! deterministic: the calendar queue fixes the order. Branching exists
//! only where *faults* may strike, and those are gated by a **fault
//! budget**: a path may contain at most `fault_budget` non-Step actions.
//! Path count is therefore `C(depth, B) · targets^B` rather than
//! exponential in depth, which a BFS with state-hash deduplication
//! explores exhaustively in seconds for the shipped configurations.
//!
//! States are canonicalized to a `u64` digest ([`itb_sim::Digest`], FNV-1a)
//! via `state_digest()` hooks in `itb_net::Network`, `itb_nic::Nic`,
//! `itb_gm::Host` and `itb_gm::Cluster`, plus the event queue's ordered
//! iteration. Worlds with equal digests evolve identically, so BFS merges
//! them; a false *distinction* only costs time, a false *merge* would be
//! unsound, so diagnostics-only fields (stat counters, timelines, tracers)
//! are excluded while every behavioral field is folded in.
//!
//! # Counterexamples
//!
//! BFS finds a violating path of minimal action count by construction;
//! [`explore::minimize`] then greedily drops fault actions and re-replays,
//! keeping any shorter path that still violates. Minimized schedules are
//! serialized in a line-oriented token format ([`Action::token`]) that the
//! regression tests replay from committed fixtures, and
//! [`replay::chrome_trace`] renders any schedule as a `chrome://tracing` /
//! Perfetto timeline for human diagnosis.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod explore;
pub mod invariants;
pub mod replay;
pub mod scenario;

pub use action::Action;
pub use explore::{explore, ExploreConfig, ExploreReport, ViolationReport};
pub use invariants::{InvariantKind, Violation};
pub use scenario::{CheckState, Scenario};

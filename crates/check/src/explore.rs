//! Breadth-first exhaustive exploration with state-hash deduplication,
//! plus greedy counterexample minimization.

use crate::action::{render_schedule, Action};
use crate::invariants::{self, InvariantKind, Violation};
use crate::scenario::Scenario;
use itb_sim::FxHashSet;
use std::collections::VecDeque;

/// Exploration bounds.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Maximum path length (every action counts, `Step` included).
    pub depth: usize,
    /// Maximum non-`Step` actions per path. Branching only happens while
    /// budget remains, so this — not the depth — controls the state count.
    pub fault_budget: u32,
    /// Hard cap on explored states (safety valve; a capped run reports
    /// `state_cap_hit` so truncation is never silent).
    pub max_states: u64,
}

/// Recorded violations stop growing past this many per run; exploration
/// also stops, since a single root cause floods the frontier with
/// rediscoveries of itself.
const MAX_VIOLATIONS: usize = 8;

/// One violation with its minimized reproduction schedule.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ViolationReport {
    /// Stable invariant name (see [`InvariantKind::as_str`]).
    pub kind: String,
    /// Deterministic description of the broken state.
    pub detail: String,
    /// Minimized schedule in fixture token form, one action per entry.
    pub path: Vec<String>,
    /// Length of the path BFS originally found (before minimization).
    pub found_at_len: usize,
}

/// The result of exploring one scenario.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ExploreReport {
    /// Scenario name.
    pub scenario: String,
    /// Depth bound used.
    pub depth: usize,
    /// Fault budget used.
    pub fault_budget: u32,
    /// Distinct states expanded (after digest dedup).
    pub states_explored: u64,
    /// Transitions taken (edges, including ones landing on known states).
    pub transitions: u64,
    /// Edges that landed on an already-visited digest.
    pub dedup_hits: u64,
    /// Peak frontier size.
    pub frontier_peak: u64,
    /// Longest path expanded.
    pub max_depth_reached: u64,
    /// Paths cut at the depth bound.
    pub depth_truncated: u64,
    /// Terminal states where every message was delivered.
    pub quiescent_terminals: u64,
    /// Terminal states with a surfaced connection failure (accepted: the
    /// fault schedule legitimately killed the flow and GM reported it).
    pub failed_terminals: u64,
    /// Whether the `max_states` safety valve fired (coverage incomplete).
    pub state_cap_hit: bool,
    /// Whether the violation cap stopped the run early.
    pub violation_cap_hit: bool,
    /// Every distinct violation found, minimized.
    pub violations: Vec<ViolationReport>,
}

/// Exhaustively explore `sc` to the configured bounds, checking every
/// reached state. Deterministic: same scenario and config produce a
/// byte-identical report.
pub fn explore(sc: &Scenario, cfg: &ExploreConfig) -> ExploreReport {
    let hosts = sc.num_hosts();
    let mut report = ExploreReport {
        scenario: sc.name.to_string(),
        depth: cfg.depth,
        fault_budget: cfg.fault_budget,
        states_explored: 0,
        transitions: 0,
        dedup_hits: 0,
        frontier_peak: 0,
        max_depth_reached: 0,
        depth_truncated: 0,
        quiescent_terminals: 0,
        failed_terminals: 0,
        state_cap_hit: false,
        violation_cap_hit: false,
        violations: Vec::new(),
    };
    let mut visited: FxHashSet<u64> = FxHashSet::default();
    let mut seen_counterexamples: FxHashSet<String> = FxHashSet::default();
    let mut frontier: VecDeque<(Vec<Action>, u32)> = VecDeque::new();

    let root = sc.build();
    visited.insert(root.digest());
    // The root must be clean before expansion (children are checked as
    // they are generated, so every expanded parent is known clean).
    if let Some(v) = invariants::check_state(&root.cluster, hosts) {
        record(sc, &mut report, &mut seen_counterexamples, v, &[]);
        return report;
    }
    frontier.push_back((Vec::new(), 0));
    report.frontier_peak = 1;

    while let Some((path, faults_used)) = frontier.pop_front() {
        if report.states_explored >= cfg.max_states {
            report.state_cap_hit = true;
            break;
        }
        if report.violations.len() >= MAX_VIOLATIONS {
            report.violation_cap_hit = true;
            break;
        }
        report.states_explored += 1;
        report.max_depth_reached = report.max_depth_reached.max(path.len() as u64);

        let st = sc.replay(&path);
        if st.queue.is_empty() {
            match invariants::check_terminal(&st.cluster, &st.queue) {
                Some(v) => record(sc, &mut report, &mut seen_counterexamples, v, &path),
                None => {
                    if st.cluster.connection_failures().is_empty() {
                        report.quiescent_terminals += 1;
                    } else {
                        report.failed_terminals += 1;
                    }
                }
            }
            continue;
        }
        if path.len() >= cfg.depth {
            report.depth_truncated += 1;
            continue;
        }
        let budget_left = cfg.fault_budget - faults_used;
        for a in st.enabled(sc, budget_left) {
            report.transitions += 1;
            let mut child = sc.replay(&path);
            let applied = child.apply(a);
            debug_assert!(applied, "enabled action {a} must apply");
            let mut child_path = path.clone();
            child_path.push(a);
            if let Some(v) = invariants::check_state(&child.cluster, hosts) {
                record(sc, &mut report, &mut seen_counterexamples, v, &child_path);
                // A violating state is recorded, not expanded.
                continue;
            }
            if !visited.insert(child.digest()) {
                report.dedup_hits += 1;
                continue;
            }
            frontier.push_back((child_path, faults_used + u32::from(a.is_fault())));
            report.frontier_peak = report.frontier_peak.max(frontier.len() as u64);
        }
    }
    report
}

/// Record a violation: minimize its path, dedupe against already-recorded
/// counterexamples (one root cause reappears along many interleavings),
/// and append the report entry.
fn record(
    sc: &Scenario,
    report: &mut ExploreReport,
    seen: &mut FxHashSet<String>,
    v: Violation,
    path: &[Action],
) {
    let min = minimize(sc, path, v.kind);
    let key = format!("{}|{}", v.kind.as_str(), render_schedule(&min));
    if !seen.insert(key) {
        return;
    }
    report.violations.push(ViolationReport {
        kind: v.kind.as_str().to_string(),
        detail: v.detail,
        path: min.iter().map(Action::token).collect(),
        found_at_len: path.len(),
    });
}

/// Greedily shrink a violating schedule: repeatedly try removing each
/// fault action (scanning from the end) and re-replaying; keep any
/// candidate that still reaches a violation of the same kind, truncated
/// to the first state that exhibits it. BFS already guarantees minimal
/// action *count* for the original kind, so this mainly strips fault
/// injections that turned out to be irrelevant to the failure.
pub fn minimize(sc: &Scenario, path: &[Action], kind: InvariantKind) -> Vec<Action> {
    let mut best: Vec<Action> = match violating_prefix(sc, path, kind) {
        Some(p) => p,
        // The path as given does not reproduce (e.g. a terminal-only
        // violation observed mid-path): return it untouched.
        None => return path.to_vec(),
    };
    loop {
        let mut improved = false;
        for i in (0..best.len()).rev() {
            if !best[i].is_fault() {
                continue;
            }
            let mut cand = best.clone();
            cand.remove(i);
            if let Some(shorter) = violating_prefix(sc, &cand, kind) {
                best = shorter;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Replay `path` and return its shortest prefix whose end state violates
/// `kind` (checking the terminal invariant when the queue drains), or
/// `None` if the full path stays clean.
fn violating_prefix(sc: &Scenario, path: &[Action], kind: InvariantKind) -> Option<Vec<Action>> {
    let hosts = sc.num_hosts();
    let mut st = sc.build();
    if kind == InvariantKind::Deadlock {
        if let Some(v) = invariants::check_terminal(&st.cluster, &st.queue) {
            debug_assert_eq!(v.kind, kind);
            return Some(Vec::new());
        }
    }
    for (i, &a) in path.iter().enumerate() {
        if !st.apply(a) {
            // The shrunken schedule diverged (an action lost its target);
            // skip it and keep replaying the rest.
            continue;
        }
        let hit = match kind {
            InvariantKind::Deadlock => invariants::check_terminal(&st.cluster, &st.queue),
            _ => invariants::check_state(&st.cluster, hosts).filter(|v| v.kind == kind),
        };
        if hit.is_some() {
            return Some(path[..=i].to_vec());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    /// Tiny exhaustive sweep: one message, one drop allowed. Completes in
    /// well under a second and must find nothing.
    #[test]
    fn tiny_two_host_sweep_is_clean() {
        let sc = Scenario::two_host(1);
        let cfg = ExploreConfig {
            depth: 40,
            fault_budget: 1,
            max_states: 20_000,
        };
        let r = explore(&sc, &cfg);
        assert!(r.violations.is_empty(), "violations: {:?}", r.violations);
        assert!(!r.state_cap_hit, "cap hit at {} states", r.states_explored);
        assert!(r.states_explored > 40, "faults must branch the space");
        assert!(r.dedup_hits > 0, "interleavings must reconverge");
    }

    #[test]
    fn minimize_returns_input_when_nothing_reproduces() {
        // A clean schedule cannot be shrunk toward a violation it never
        // exhibits; minimize must hand it back untouched.
        let sc = Scenario::two_host(1);
        let path = vec![Action::Step; 5];
        assert_eq!(minimize(&sc, &path, InvariantKind::DuplicateDelivery), path);
    }

    #[test]
    fn exploration_is_deterministic() {
        let sc = Scenario::two_host(1);
        let cfg = ExploreConfig {
            depth: 30,
            fault_budget: 1,
            max_states: 10_000,
        };
        let a = explore(&sc, &cfg);
        let b = explore(&sc, &cfg);
        assert_eq!(a.states_explored, b.states_explored);
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.dedup_hits, b.dedup_hits);
        assert_eq!(a.frontier_peak, b.frontier_peak);
    }
}

//! Checker scenarios: small, fully deterministic cluster configurations
//! whose interleavings the explorer enumerates, and the world wrapper that
//! applies [`Action`]s to them.
//!
//! Scenarios deliberately use only deterministic application behaviors
//! (`Stream` / `Sink`) — the per-host RNG streams are never drawn from, so
//! they are soundly excluded from the state digest. Retry budgets are
//! lowered (`max_retries = 3`) so connection-failure terminals fit inside
//! the depth bound.

use crate::action::Action;
use itb_core::ClusterSpec;
use itb_gm::cluster::{ClusterEvent, HostEvent};
use itb_gm::{AppBehavior, Cluster};
use itb_net::PacketId;
use itb_nic::McpFlavor;
use itb_routing::figures;
use itb_sim::{Digest, EventQueue, World};
use itb_topo::{HostId, LinkId};

/// Message payload used by all scenarios: single-packet (well under the
/// MTU), so one message is one data packet plus one ACK.
const MSG_BYTES: u32 = 64;

/// A named, reproducible checker configuration: the cluster to build, the
/// traffic to run, and which fault actions the explorer may inject.
pub struct Scenario {
    /// Stable name (artifact key, fixture reference).
    pub name: &'static str,
    spec: ClusterSpec,
    behaviors: Vec<AppBehavior>,
    /// Whether [`Action::Drop`] is offered on in-flight packets.
    pub drop_faults: bool,
    /// Links eligible for [`Action::LinkDown`] / [`Action::LinkUp`].
    pub link_faults: Vec<LinkId>,
    /// Hosts eligible for [`Action::Crash`] / [`Action::Recover`].
    pub crash_faults: Vec<HostId>,
}

impl Scenario {
    /// The minimal reliability scenario: two hosts on one switch, host 0
    /// streaming `messages` single-packet messages at host 1, with packet
    /// drops (and the retransmission timeouts they provoke) as the fault
    /// alphabet.
    pub fn two_host(messages: u32) -> Self {
        let mut spec = ClusterSpec::chain(1, 2);
        spec.calib.gm.max_retries = 3;
        let behaviors = vec![
            AppBehavior::Stream {
                dst: HostId(1),
                size: MSG_BYTES,
                count: messages,
            },
            AppBehavior::Sink,
        ];
        Scenario {
            name: "two_host",
            spec,
            behaviors,
            drop_faults: true,
            link_faults: Vec::new(),
            crash_faults: Vec::new(),
        }
    }

    /// The two-host scenario with NIC crashes in the fault alphabet: either
    /// endpoint's NIC may crash and recover at any point, on top of packet
    /// drops. Crash of the receiver mid-reception exercises the flush
    /// paths; crash of the sender while an ACK is inbound exercises
    /// duplicate suppression across the loss.
    pub fn two_host_crash() -> Self {
        let mut sc = Self::two_host(1);
        sc.name = "two_host_crash";
        sc.crash_faults = vec![HostId(0), HostId(1)];
        sc
    }

    /// The two-host scenario squeezed through a single-buffer receive pool
    /// in the paper's §4 flush-on-overflow mode: two back-to-back messages
    /// compete for one buffer, so overflow flushes and the retransmissions
    /// they force are part of every schedule — the checker sweeps drops on
    /// top of that.
    pub fn two_host_tiny_pool() -> Self {
        let mut sc = Self::two_host(2);
        sc.name = "two_host_tiny_pool";
        sc.spec = sc.spec.with_recv_buffers(1).with_flush_on_overflow(true);
        sc
    }

    /// The paper's Figure 6 testbed on the ITB path (host 1 → in-transit
    /// host → host 2, flush-on-overflow receive pool): one message through
    /// the ITB route, with drops, an inter-switch cable outage and a crash
    /// of the in-transit host's NIC as the fault alphabet.
    pub fn fig6_itb() -> Self {
        let base = ClusterSpec::fig6_testbed()
            .with_mcp(McpFlavor::Itb)
            .with_flush_on_overflow(true);
        // detlint::allow(S001, fig6_testbed always carries its testbed structure)
        let tb = base.testbed.clone().expect("fig6 testbed structure");
        let mut spec = base
            .with_route_override(figures::fig8_itb_route(&tb))
            .with_route_override(figures::fig8_return_route(&tb));
        spec.calib.gm.max_retries = 3;
        let mut behaviors = vec![AppBehavior::Sink; spec.num_hosts()];
        behaviors[tb.host1.idx()] = AppBehavior::Stream {
            dst: tb.host2,
            size: MSG_BYTES,
            count: 1,
        };
        Scenario {
            name: "fig6_itb",
            spec,
            behaviors,
            drop_faults: true,
            link_faults: vec![tb.cable_a],
            crash_faults: vec![tb.itb_host],
        }
    }

    /// The Figure 6 ITB path under **stock** GM flow control (backpressure
    /// instead of the §4 flush-on-overflow pool): the configuration the
    /// paper's flush policy exists to avoid. Used by the checker's own
    /// validation tests — the explorer must be able to *find* a deadlock
    /// when one is reachable — and not part of the shipped clean gate.
    pub fn fig6_stock(messages: u32) -> Self {
        let mut sc = Self::fig6_itb();
        sc.name = "fig6_stock";
        sc.spec = sc.spec.with_flush_on_overflow(false);
        let h1 = sc
            .behaviors
            .iter()
            .position(|b| matches!(b, AppBehavior::Stream { .. }))
            // detlint::allow(S001, fig6 testbed always has host1 streaming)
            .expect("fig6 scenario streams from host1");
        if let AppBehavior::Stream { count, .. } = &mut sc.behaviors[h1] {
            *count = messages;
        }
        sc
    }

    /// Look a scenario up by its stable name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "two_host" => Some(Self::two_host(2)),
            "two_host_crash" => Some(Self::two_host_crash()),
            "two_host_tiny_pool" => Some(Self::two_host_tiny_pool()),
            "fig6_itb" => Some(Self::fig6_itb()),
            _ => None,
        }
    }

    /// Number of hosts in the scenario's topology.
    pub fn num_hosts(&self) -> usize {
        self.spec.num_hosts()
    }

    /// Build the root world: cluster constructed, applications started,
    /// nothing dispatched yet.
    pub fn build(&self) -> CheckState {
        let mut cluster = self.spec.build(self.behaviors.clone());
        let mut queue = EventQueue::new();
        cluster.start(&mut queue);
        CheckState { cluster, queue }
    }

    /// Rebuild the root and replay `path` on it. The simulator is
    /// deterministic, so this reproduces the exact world the path reached
    /// — the checker's substitute for cloning world state.
    pub fn replay(&self, path: &[Action]) -> CheckState {
        let mut st = self.build();
        for &a in path {
            st.apply(a);
        }
        st
    }
}

/// A world under exploration: the cluster plus its event queue.
pub struct CheckState {
    /// The simulated cluster.
    pub cluster: Cluster,
    /// Its calendar queue.
    pub queue: EventQueue<ClusterEvent>,
}

impl CheckState {
    /// Apply one action. Returns `false` when the action is not applicable
    /// in this state (empty queue for `Step`, unknown/corrupt packet for
    /// `Drop`, crash state mismatch, …) — the world is left unchanged in
    /// that case, so replaying an over-long fixture is harmless.
    pub fn apply(&mut self, a: Action) -> bool {
        let now = self.queue.now();
        match a {
            Action::Step => match self.queue.pop() {
                Some((t, ev)) => {
                    self.cluster.handle(t, ev, &mut self.queue);
                    true
                }
                None => false,
            },
            Action::Drop { packet } => self.cluster.net.force_corrupt(PacketId(packet), now),
            Action::LinkDown { link } => {
                let id = LinkId(link);
                if self.cluster.net.link_forced_down(id) {
                    return false;
                }
                self.cluster.net.set_link_forced_down(id, true);
                true
            }
            Action::LinkUp { link } => {
                let id = LinkId(link);
                if !self.cluster.net.link_forced_down(id) {
                    return false;
                }
                self.cluster.net.set_link_forced_down(id, false);
                true
            }
            Action::Crash { host } => {
                let h = HostId(host);
                if self.cluster.nic(h).is_crashed() {
                    return false;
                }
                self.cluster.handle(
                    now,
                    ClusterEvent::Host(HostEvent::NicCrash { host: h }),
                    &mut self.queue,
                );
                true
            }
            Action::Recover { host } => {
                let h = HostId(host);
                if !self.cluster.nic(h).is_crashed() {
                    return false;
                }
                self.cluster.handle(
                    now,
                    ClusterEvent::Host(HostEvent::NicRecover { host: h }),
                    &mut self.queue,
                );
                true
            }
        }
    }

    /// Enumerate the actions applicable in this state, in deterministic
    /// order: `Step` first, then (if `faults_left > 0`) drops over the
    /// in-flight uncorrupted packets in id order, link toggles, and crash
    /// toggles, per the scenario's fault alphabet.
    pub fn enabled(&self, sc: &Scenario, faults_left: u32) -> Vec<Action> {
        let mut out = Vec::new();
        if !self.queue.is_empty() {
            out.push(Action::Step);
        }
        if faults_left == 0 {
            return out;
        }
        if sc.drop_faults {
            // parked_packets() is sorted by id.
            for id in self.cluster.net.parked_packets() {
                if !self.cluster.net.packet(id).corrupted {
                    out.push(Action::Drop { packet: id.0 });
                }
            }
        }
        for &l in &sc.link_faults {
            if self.cluster.net.link_forced_down(l) {
                out.push(Action::LinkUp { link: l.0 });
            } else {
                out.push(Action::LinkDown { link: l.0 });
            }
        }
        for &h in &sc.crash_faults {
            if self.cluster.nic(h).is_crashed() {
                out.push(Action::Recover { host: h.0 });
            } else {
                out.push(Action::Crash { host: h.0 });
            }
        }
        out
    }

    /// Canonical digest of the whole world: every behavioral cluster field
    /// (see [`Cluster::state_digest`]) plus the event queue — current time,
    /// length, and each pending event's absolute `(time, rank_time)` and
    /// content in pop order. Worlds with equal digests evolve identically.
    pub fn digest(&self) -> u64 {
        let mut d = Digest::new();
        self.cluster.state_digest(&mut d);
        d.u64(self.queue.now().as_ps());
        d.usize(self.queue.len());
        for (t, rt, ev) in self.queue.iter_ordered() {
            d.u64(t.as_ps());
            d.u64(rt.as_ps());
            ev.digest_into(&mut d);
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_digest_is_reproducible() {
        let sc = Scenario::two_host(1);
        assert_eq!(sc.build().digest(), sc.build().digest());
    }

    #[test]
    fn step_advances_and_changes_digest() {
        let sc = Scenario::two_host(1);
        let mut st = sc.build();
        let root = st.digest();
        assert!(st.apply(Action::Step));
        assert_ne!(st.digest(), root, "a dispatched event must change state");
    }

    #[test]
    fn replay_reproduces_stepwise_application() {
        let sc = Scenario::two_host(1);
        let mut st = sc.build();
        let mut path = Vec::new();
        for _ in 0..20 {
            if !st.apply(Action::Step) {
                break;
            }
            path.push(Action::Step);
        }
        assert_eq!(sc.replay(&path).digest(), st.digest());
    }

    #[test]
    fn inapplicable_actions_are_rejected_without_effect() {
        let sc = Scenario::two_host(1);
        let mut st = sc.build();
        let root = st.digest();
        assert!(!st.apply(Action::Drop { packet: 999 }));
        assert!(!st.apply(Action::LinkUp { link: 0 }));
        assert!(!st.apply(Action::Recover { host: 0 }));
        assert_eq!(st.digest(), root);
    }

    #[test]
    fn fig6_scenario_offers_crash_and_link_faults() {
        let sc = Scenario::fig6_itb();
        let st = sc.build();
        let acts = st.enabled(&sc, 1);
        assert!(acts.contains(&Action::Step));
        assert!(acts.iter().any(|a| matches!(a, Action::LinkDown { .. })));
        assert!(acts.iter().any(|a| matches!(a, Action::Crash { .. })));
        // Budget exhausted: only Step remains.
        assert_eq!(st.enabled(&sc, 0), vec![Action::Step]);
    }
}

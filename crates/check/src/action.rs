//! The checker's transition alphabet.

use std::fmt;

/// One transition the checker can take from a world state.
///
/// `Step` is the deterministic move — pop the next calendar event and
/// dispatch it. Everything else injects a fault *now* (at the queue's
/// current time) and is gated by the exploration fault budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Pop and handle the next scheduled event.
    Step,
    /// CRC-corrupt an in-flight packet; the destination NIC's tail check
    /// will discard it, exactly like a seeded fault-plan drop.
    Drop {
        /// The packet id ([`itb_net::PacketId`]).
        packet: u64,
    },
    /// Force a link down: arriving head flits are corrupted until the
    /// matching [`Action::LinkUp`].
    LinkDown {
        /// The link id ([`itb_topo::LinkId`]).
        link: u32,
    },
    /// Bring a forced-down link back up.
    LinkUp {
        /// The link id.
        link: u32,
    },
    /// Crash a host's NIC (flushes its receptions, discards arrivals).
    Crash {
        /// The host id.
        host: u16,
    },
    /// Recover a crashed NIC.
    Recover {
        /// The host id.
        host: u16,
    },
}

impl Action {
    /// Render this action as one fixture token (`step`, `drop 5`,
    /// `link-down 0`, `link-up 0`, `crash 1`, `recover 1`). [`Action::parse`]
    /// round-trips it.
    pub fn token(&self) -> String {
        match *self {
            Action::Step => "step".to_string(),
            Action::Drop { packet } => format!("drop {packet}"),
            Action::LinkDown { link } => format!("link-down {link}"),
            Action::LinkUp { link } => format!("link-up {link}"),
            Action::Crash { host } => format!("crash {host}"),
            Action::Recover { host } => format!("recover {host}"),
        }
    }

    /// Parse one fixture token (inverse of [`Action::token`]).
    ///
    /// # Errors
    /// Returns a description of the malformed token.
    pub fn parse(s: &str) -> Result<Action, String> {
        let mut parts = s.split_whitespace();
        let head = parts
            .next()
            .ok_or_else(|| "empty action token".to_string())?;
        let arg = parts.next();
        if parts.next().is_some() {
            return Err(format!("trailing tokens in action {s:?}"));
        }
        fn num<T: std::str::FromStr>(head: &str, arg: Option<&str>) -> Result<T, String> {
            arg.ok_or_else(|| format!("`{head}` needs an argument"))?
                .parse()
                .map_err(|_| format!("bad `{head}` argument"))
        }
        match head {
            "step" => match arg {
                None => Ok(Action::Step),
                Some(_) => Err("`step` takes no argument".to_string()),
            },
            "drop" => Ok(Action::Drop {
                packet: num(head, arg)?,
            }),
            "link-down" => Ok(Action::LinkDown {
                link: num(head, arg)?,
            }),
            "link-up" => Ok(Action::LinkUp {
                link: num(head, arg)?,
            }),
            "crash" => Ok(Action::Crash {
                host: num(head, arg)?,
            }),
            "recover" => Ok(Action::Recover {
                host: num(head, arg)?,
            }),
            other => Err(format!("unknown action {other:?}")),
        }
    }

    /// Whether this action spends one unit of the fault budget.
    pub fn is_fault(&self) -> bool {
        !matches!(self, Action::Step)
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.token())
    }
}

/// Parse a whole fixture schedule: one action token per line, blank lines
/// and `#` comments skipped.
///
/// # Errors
/// Returns the first malformed line (1-based) and its parse error.
pub fn parse_schedule(text: &str) -> Result<Vec<Action>, String> {
    let mut out = Vec::new();
    for (ix, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let a = Action::parse(line).map_err(|e| format!("line {}: {e}", ix + 1))?;
        out.push(a);
    }
    Ok(out)
}

/// Render a schedule in the fixture format (inverse of [`parse_schedule`]).
pub fn render_schedule(path: &[Action]) -> String {
    let mut s = String::new();
    for a in path {
        s.push_str(&a.token());
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_round_trip() {
        let all = [
            Action::Step,
            Action::Drop { packet: 17 },
            Action::LinkDown { link: 3 },
            Action::LinkUp { link: 3 },
            Action::Crash { host: 1 },
            Action::Recover { host: 1 },
        ];
        for a in all {
            assert_eq!(Action::parse(&a.token()), Ok(a), "{a}");
        }
    }

    #[test]
    fn schedules_round_trip_with_comments() {
        let text = "# a known-bad schedule\nstep\ndrop 4\n\nstep\n";
        let parsed = parse_schedule(text).unwrap();
        assert_eq!(
            parsed,
            vec![Action::Step, Action::Drop { packet: 4 }, Action::Step]
        );
        assert_eq!(render_schedule(&parsed), "step\ndrop 4\nstep\n");
    }

    #[test]
    fn malformed_tokens_are_rejected() {
        assert!(Action::parse("").is_err());
        assert!(Action::parse("step 1").is_err());
        assert!(Action::parse("drop").is_err());
        assert!(Action::parse("drop x").is_err());
        assert!(Action::parse("teleport 3").is_err());
        assert!(parse_schedule("step\nnope\n")
            .unwrap_err()
            .contains("line 2"));
    }
}

#!/usr/bin/env bash
# Offline CI gate: build, test, lint, format. Run from the workspace root.
# Everything here works without network access — all external dependencies
# are vendored under vendor/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test (tier-1: root package) =="
cargo test -q

echo "== cargo test --workspace =="
cargo test --workspace -q

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "CI OK"

#!/usr/bin/env bash
# Offline CI gate: build, test, lint, format. Run from the workspace root.
# Everything here works without network access — all external dependencies
# are vendored under vendor/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test (tier-1: root package) =="
cargo test -q

echo "== cargo test --workspace =="
cargo test --workspace -q

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "== chaos smoke (seeded faults, exactly-once) =="
chaos_a=$(mktemp -d)
chaos_b=$(mktemp -d)
trap 'rm -rf "$chaos_a" "$chaos_b"' EXIT
ITB_RESULTS_DIR="$chaos_a" cargo run --release -q -p itb-bench --bin chaos_soak -- --smoke
echo "== chaos determinism (same seed twice, byte-identical artifact) =="
ITB_RESULTS_DIR="$chaos_b" cargo run --release -q -p itb-bench --bin chaos_soak -- --smoke
cmp "$chaos_a/chaos_soak.json" "$chaos_b/chaos_soak.json"

echo "CI OK"

#!/usr/bin/env bash
# Offline CI gate: build, test, lint, format. Run from the workspace root.
# Everything here works without network access — all external dependencies
# are vendored under vendor/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test (tier-1: root package) =="
cargo test -q

echo "== cargo test --workspace =="
cargo test --workspace -q

echo "== detlint v2 (determinism & soundness analyzer, hard gate) =="
# Zero-dependency lex -> parse -> call-graph -> rules pipeline: default-hasher
# maps, wall-clock/entropy/environment reads in sim code, float event-time
# arithmetic, library unwrap/expect/panic without a stated invariant,
# narrowing `as` casts, missing #![deny(unsafe_code)], plus the cross-crate
# taint rules (T001 transitive nondeterminism reach, T002 unordered-iteration
# sinks, T003 state-digest completeness). Exits nonzero on any unallowed
# finding; the JSON report is the audit trail. The soft wall-time budget
# keeps the gate honest about its own cost (self-benchmark in the report).
cargo run --release -q -p itb-lint --bin detlint -- --budget-ms 15000
echo "   report: results/detlint.json"

echo "== cargo clippy (deny warnings, incl. perf lints) =="
cargo clippy --workspace --all-targets -- -D warnings -D clippy::perf

echo "== cargo clippy --lib (strict: truncating casts, unwraps) =="
# Library code only: tests and benches keep unwrap ergonomics via
# clippy.toml (allow-unwrap-in-tests) and #[cfg(test)] scoping.
cargo clippy --lib \
  -p itb-sim -p itb-topo -p itb-routing -p itb-obs -p itb-net \
  -p itb-nic -p itb-gm -p itb-core -p itb-bench -p itb-lint -p itb-check \
  -- -D warnings -D clippy::cast_possible_truncation -D clippy::unwrap_used

echo "== cargo fmt --check =="
cargo fmt --check

echo "== chaos smoke (seeded faults, exactly-once) =="
chaos_a=$(mktemp -d)
chaos_b=$(mktemp -d)
perf_a=$(mktemp -d)
perf_b=$(mktemp -d)
par_a=$(mktemp -d)
par_b=$(mktemp -d)
stall_a=$(mktemp -d)
mc_a=$(mktemp -d)
mc_b=$(mktemp -d)
dl_a=$(mktemp -d)
dl_b=$(mktemp -d)
trap 'rm -rf "$chaos_a" "$chaos_b" "$perf_a" "$perf_b" "$par_a" "$par_b" "$stall_a" "$mc_a" "$mc_b" "$dl_a" "$dl_b"' EXIT
# --strict-health makes the run a health gate: the fault schedule must stay
# clean under the stall watchdog, buffer-leak audit and counter checks.
ITB_RESULTS_DIR="$chaos_a" cargo run --release -q -p itb-bench --bin chaos_soak -- --smoke --strict-health
echo "== chaos determinism (same seed twice, byte-identical artifacts) =="
ITB_RESULTS_DIR="$chaos_b" cargo run --release -q -p itb-bench --bin chaos_soak -- --smoke --strict-health
cmp "$chaos_a/chaos_soak.json" "$chaos_b/chaos_soak.json"
# The observability artifacts are pure sim-time facts — same determinism
# contract as the main artifact. (Profiler sidecars with barrier wall-ns
# are deliberately NOT compared anywhere.)
cmp "$chaos_a/chaos_timeline.jsonl" "$chaos_b/chaos_timeline.jsonl"
cmp "$chaos_a/health_report.json" "$chaos_b/health_report.json"

echo "== health stall self-test (watchdog must flag an unroutable fabric) =="
ITB_RESULTS_DIR="$stall_a" cargo run --release -q -p itb-bench --bin health_stall

echo "== perf smoke (tiny gauntlet, deterministic digest twice) =="
# Wall-clock numbers vary run to run; the digest holds only sim-side facts
# (event counts, sim time, deliveries) and must be byte-identical — any
# difference means an engine change perturbed event order.
ITB_RESULTS_DIR="$perf_a" cargo run --release -q -p itb-bench --bin perf_gauntlet -- --smoke
ITB_RESULTS_DIR="$perf_b" cargo run --release -q -p itb-bench --bin perf_gauntlet -- --smoke
cmp "$perf_a/perf_gauntlet_digest.json" "$perf_b/perf_gauntlet_digest.json"

echo "== perf-regression gate (BENCH_perf.json trajectory) =="
# Newest committed trajectory entry vs the one before it: any scenario
# whose events/sec dropped >20% fails the build. Intentional re-baselines
# (new machine, redefined scenario) acknowledge the drop explicitly with
# ITB_BENCH_BASELINE_RESET=1 rather than by loosening the tolerance.
cargo run --release -q -p itb-bench --bin perf_gate

echo "== model check smoke (exhaustive interleavings, zero violations) =="
# Depth-bounded exhaustive BFS over delivery/fault interleavings on the
# two-host configs; any invariant violation (duplicate / reordered
# delivery, buffer leak, silent deadlock) exits nonzero with a minimized
# reproduction schedule. The binary itself asserts zero depth truncation,
# so coverage at the stated fault budget is exhaustive, and the report
# must be byte-identical across a double run.
ITB_RESULTS_DIR="$mc_a" cargo run --release -q -p itb-bench --bin model_check -- --smoke
ITB_RESULTS_DIR="$mc_b" cargo run --release -q -p itb-bench --bin model_check -- --smoke
cmp "$mc_a/model_check.json" "$mc_b/model_check.json"

echo "== static deadlock-freedom audit (CDG acyclicity, byte-identical) =="
# Dally & Seitz: a route set is deadlock-free iff its channel dependency
# graph is acyclic. Every shipped route set (fig6, gauntlet presets,
# irregular64, a fresh 1024-switch fabric) must be acyclic; the cyclic
# all-clockwise ring control must be flagged with its witness cycle. The
# audit is the static complement of the model checker above.
ITB_RESULTS_DIR="$dl_a" cargo run --release -q -p itb-bench --bin deadlock_audit > /dev/null
ITB_RESULTS_DIR="$dl_b" cargo run --release -q -p itb-bench --bin deadlock_audit > /dev/null
cmp "$dl_a/deadlock_audit.json" "$dl_b/deadlock_audit.json"

echo "== parallel determinism (ITB_THREADS=1 vs 4, byte-identical digest) =="
# The sharded conservative-PDES engine must reproduce the sequential event
# order exactly on the gauntlet workloads: same scenarios, 1 thread vs 4
# shards, digest byte-compare. This gate runs on ANY core count — the
# workers synchronize on barriers, so a 4-shard run on fewer than 4 cores
# is merely slow (the smoke workloads are tiny), never incorrect; skipping
# here on small boxes previously left the cross-process contract unchecked
# on the very machines producing committed results.
ITB_RESULTS_DIR="$par_a" ITB_THREADS=1 cargo run --release -q -p itb-bench --bin perf_gauntlet -- --smoke
ITB_RESULTS_DIR="$par_b" ITB_THREADS=4 cargo run --release -q -p itb-bench --bin perf_gauntlet -- --smoke
cmp "$par_a/perf_gauntlet_digest.json" "$par_b/perf_gauntlet_digest.json"

echo "CI OK"

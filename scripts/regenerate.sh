#!/usr/bin/env bash
# Regenerate every figure, table and ablation reported in EXPERIMENTS.md.
# Results land in results/*.json; the printed tables are the paper's rows.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo
    echo "======================================================================"
    echo "== $*"
    echo "======================================================================"
    cargo run --release -p itb-bench --bin "$@"
}

cargo build --release -p itb-bench

run fig7                      # Figure 7: MCP support overhead
run fig8                      # Figure 8: per-ITB latency
run motivation_throughput 16 1
run motivation_throughput 32 1
run motivation_balance        # route-quality vs network size
run ablation_itb_count        # latency vs number of ITBs
run ablation_pool             # §4 circular receive pool
run ablation_root             # spanning-tree root placement
run ablation_policies         # arbitration + ITB host selection
run bandwidth                 # one-way bandwidth, both MCPs
run app_exchange 16 1         # application phases (§6 future work)
run latency_breakdown         # where the microseconds go

echo
echo "All experiment artifacts regenerated under results/."

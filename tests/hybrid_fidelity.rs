//! Hybrid flow/packet engine fidelity: the flow-level model must never
//! change *what* the cluster delivers, only how cheaply it simulates the
//! uncongested stretches.
//!
//! Three contracts, in escalating strength:
//!
//! * **All-packet plans are inert.** A `RegionPlan::all_packet` hybrid run
//!   schedules zero flow events, so every observable the `par_equivalence`
//!   suite extracts — dispatched event count, final sim time, the ordered
//!   delivery log, the metric counters — is byte-identical to a plain
//!   sequential run. (The state digest itself gains a flow-mode section by
//!   design, so the comparison is over the observables, which is what the
//!   CI artifact gates byte-compare.)
//! * **Mixed-fidelity runs preserve the delivery contract.** Messages
//!   riding the flow model arrive with the same `(src, dst, msg_id)` set
//!   and the same per-pair FIFO order as the full packet model; only the
//!   timing differs (that is the approximation being bought).
//! * **Escalation is safe.** A deliberately contended Flow region trips
//!   the [`ESCALATE_CONTENTION`] trigger, hands its flows back to the
//!   packet path mid-flight, and still delivers everything exactly once,
//!   deterministically.

use itb_myrinet::core::{ClusterSpec, RoutingPolicy};
use itb_myrinet::gm::{AppBehavior, Cluster, ClusterEvent, ESCALATE_CONTENTION};
use itb_myrinet::sim::{run_while, Digest, EventQueue, SimDuration};
use itb_myrinet::topo::{partition, HostId, RegionFidelity, RegionPlan};

const REGIONS: usize = 4;
const FLOW_ROUND: SimDuration = SimDuration::from_us(50);

/// Run a prepared cluster until `expected` messages are delivered (the
/// queue draining early would fail the count assert).
fn drain(cluster: &mut Cluster, q: &mut EventQueue<ClusterEvent>, expected: usize) {
    cluster.start(q);
    run_while(cluster, q, |c| c.delivered_count() < expected);
    assert_eq!(cluster.delivered_count(), expected, "run must drain fully");
}

fn digest_of(cluster: &Cluster) -> u64 {
    let mut d = Digest::new();
    cluster.state_digest(&mut d);
    d.finish()
}

/// The delivery log as an order-insensitive set (sorted triples): hybrid
/// runs may interleave pairs differently, but the set must be identical.
fn delivered_set(cluster: &Cluster) -> Vec<(u16, u16, u32)> {
    let mut v: Vec<(u16, u16, u32)> = cluster
        .delivery_log()
        .iter()
        .map(|&(from, to, id)| (from.0, to.0, id))
        .collect();
    v.sort_unstable();
    v
}

/// Per-(src, dst) delivery order: the sequence of message ids each pair's
/// receiver saw, in delivery order.
fn pair_orders(cluster: &Cluster) -> std::collections::BTreeMap<(u16, u16), Vec<u32>> {
    let mut m: std::collections::BTreeMap<(u16, u16), Vec<u32>> = Default::default();
    for &(from, to, id) in cluster.delivery_log() {
        m.entry((from.0, to.0)).or_default().push(id);
    }
    m
}

#[test]
fn all_packet_plan_is_byte_identical_to_sequential() {
    let spec = ClusterSpec::irregular(16, 1).with_routing(RoutingPolicy::Itb);
    let n = spec.num_hosts();
    let behaviors: Vec<AppBehavior> = (0..n)
        .map(|i| AppBehavior::Stream {
            dst: HostId(((i + n / 2) % n) as u16),
            size: 512,
            count: 3,
        })
        .collect();
    let expected = n * 3;

    let mut plain = spec.build(behaviors.clone());
    let mut q_plain = EventQueue::new();
    drain(&mut plain, &mut q_plain, expected);

    let mut hybrid = spec.build(behaviors);
    let plan = RegionPlan::all_packet(partition(spec.topology(), REGIONS, spec.seed));
    hybrid.enable_flow_regions(plan, FLOW_ROUND);
    let mut q_hybrid = EventQueue::new();
    drain(&mut hybrid, &mut q_hybrid, expected);

    // Same event stream, same clock, same ordered delivery log: the flow
    // machinery scheduled nothing.
    assert_eq!(q_hybrid.events_dispatched(), q_plain.events_dispatched());
    assert_eq!(q_hybrid.now(), q_plain.now());
    assert_eq!(hybrid.delivery_log(), plain.delivery_log());
    assert_eq!(
        hybrid.flow_messages(),
        0,
        "no message may ride the flow path"
    );

    // Metric counters: identical once the flow-mode-only keys (all zero)
    // are set aside — packet-only artifacts keep their exact legacy set.
    let snap_p = plain.metrics_snapshot(q_plain.now());
    let snap_h = hybrid.metrics_snapshot(q_hybrid.now());
    for (k, v) in &snap_h.counters {
        match k.strip_prefix("flow.") {
            Some(_) => assert_eq!(*v, 0, "inert flow counter {k}"),
            None => assert_eq!(Some(v), snap_p.counters.get(k), "counter {k}"),
        }
    }
    assert_eq!(
        snap_h
            .counters
            .iter()
            .filter(|(k, _)| !k.starts_with("flow."))
            .count(),
        snap_p.counters.len()
    );
}

#[test]
fn mixed_regions_preserve_delivery_set_and_pair_order() {
    // Up*/down* routing: no in-transit hops, so paths inside Flow regions
    // are flow-eligible. Region 0 is demoted to Packet up front — messages
    // crossing it take the packet path, the rest ride the flow model.
    let spec = ClusterSpec::irregular(16, 1).with_routing(RoutingPolicy::UpDown);
    let n = spec.num_hosts();
    // A light permutation load (3 messages per host, all opened at t=0)
    // stays under the contention trigger on every channel.
    let behaviors: Vec<AppBehavior> = (0..n)
        .map(|i| AppBehavior::Stream {
            dst: HostId(((i + n / 2) % n) as u16),
            size: 1_024,
            count: 3,
        })
        .collect();
    let expected = n * 3;

    let mut plain = spec.build(behaviors.clone());
    let mut q_plain = EventQueue::new();
    drain(&mut plain, &mut q_plain, expected);

    let mut hybrid = spec.build(behaviors);
    let mut plan = RegionPlan::all_flow(partition(spec.topology(), REGIONS, spec.seed));
    plan.escalate(0);
    hybrid.enable_flow_regions(plan, FLOW_ROUND);
    let mut q_hybrid = EventQueue::new();
    drain(&mut hybrid, &mut q_hybrid, expected);

    assert!(
        hybrid.flow_messages() > 0,
        "the mixed plan must divert some messages to the flow engine"
    );
    assert!(
        hybrid.flow_messages() < expected as u64,
        "region 0 must keep some messages on the packet path"
    );
    // Same delivered set, same per-pair FIFO order, same end-to-end GM
    // counters; only inter-pair timing may differ.
    assert_eq!(delivered_set(&hybrid), delivered_set(&plain));
    assert_eq!(pair_orders(&hybrid), pair_orders(&plain));
    let snap_p = plain.metrics_snapshot(q_plain.now());
    let snap_h = hybrid.metrics_snapshot(q_hybrid.now());
    assert_eq!(
        snap_h.counters.get("gm.app_deliveries"),
        snap_p.counters.get("gm.app_deliveries")
    );
    assert_eq!(snap_h.counters.get("gm.retransmissions"), Some(&0));
    // Every message record closed out in both runs.
    for (id, rec) in hybrid.messages() {
        assert!(rec.delivered_at.is_some(), "message {id} delivered");
    }
}

#[test]
fn contended_flow_region_escalates_and_still_delivers_exactly_once() {
    let spec = ClusterSpec::irregular(16, 1).with_routing(RoutingPolicy::UpDown);
    let n = spec.num_hosts();
    // Incast: enough senders stream at one destination host to push its
    // downlink occupancy past the trigger on the first solve.
    let senders = (ESCALATE_CONTENTION + 2) as usize;
    let dst = HostId((n - 1) as u16);
    let mut behaviors = vec![AppBehavior::Sink; n];
    let mut expected = 0;
    for (i, b) in behaviors.iter_mut().enumerate().take(senders) {
        assert!(i != dst.0 as usize);
        *b = AppBehavior::Stream {
            dst,
            size: 2_048,
            count: 2,
        };
        expected += 2;
    }

    let mut plain = spec.build(behaviors.clone());
    let mut q_plain = EventQueue::new();
    drain(&mut plain, &mut q_plain, expected);

    let run_hybrid = || {
        let mut hybrid = spec.build(behaviors.clone());
        let plan = RegionPlan::all_flow(partition(spec.topology(), REGIONS, spec.seed));
        hybrid.enable_flow_regions(plan, FLOW_ROUND);
        let mut q = EventQueue::new();
        drain(&mut hybrid, &mut q, expected);
        (
            digest_of(&hybrid),
            delivered_set(&hybrid),
            pair_orders(&hybrid),
            {
                let fid = hybrid.region_fidelity().expect("flow mode on").to_vec();
                (fid, hybrid.flow_messages())
            },
        )
    };
    let (digest_a, set_a, orders_a, (fidelity, flow_msgs)) = run_hybrid();

    assert!(flow_msgs > 0, "the incast must start on the flow path");
    assert!(
        fidelity.contains(&RegionFidelity::Packet),
        "the contended region must have escalated: {fidelity:?}"
    );
    // Escalation handed the flows back mid-flight, yet the delivery
    // contract holds against the pure packet run.
    assert_eq!(set_a, delivered_set(&plain));
    assert_eq!(orders_a, pair_orders(&plain));

    // And the whole escalating run is reproducible, digest included.
    let (digest_b, set_b, orders_b, _) = run_hybrid();
    assert_eq!(digest_a, digest_b);
    assert_eq!(set_a, set_b);
    assert_eq!(orders_a, orders_b);
}

//! Property-based tests of the GM go-back-N reliability layer: a wire
//! adversary applies arbitrary drop/duplicate/reorder schedules between a
//! sender and a receiver `Host`, with connections starting anywhere in the
//! sequence ring (including right at the `u32::MAX -> 0` wrap), and every
//! message must still arrive exactly once and in order.

use itb_myrinet::gm::host::{Host, RxAction};
use itb_myrinet::gm::meta::{Kind, PacketMeta};
use itb_myrinet::gm::GmConfig;
use itb_myrinet::routing::{RouteTable, RoutingPolicy};
use itb_myrinet::sim::SimTime;
use itb_myrinet::topo::builders::chain;
use itb_myrinet::topo::{HostId, UpDown};
use proptest::prelude::*;
use std::sync::Arc;

const SENDER: HostId = HostId(0);
const RECEIVER: HostId = HostId(1);

fn mk_host(id: HostId) -> Host {
    let topo = chain(2, 1);
    let ud = UpDown::compute_default(&topo);
    let routes = Arc::new(RouteTable::compute(&topo, &ud, RoutingPolicy::UpDown).unwrap());
    let cfg = GmConfig {
        max_retries: 0, // retry forever: no schedule may abandon a message
        ..GmConfig::default()
    };
    Host::new(id, cfg, routes, 2)
}

/// One in-flight wire item: a DATA packet or a cumulative ACK.
#[derive(Clone, Copy)]
enum Wire {
    Data { payload_len: u32, tag: u64 },
    Ack { seq: u32 },
}

/// The wire adversary: consumes one schedule byte per item. While the
/// schedule lasts, items may be dropped, duplicated, or swapped with their
/// successor; once it is exhausted the wire turns faithful, so every run
/// terminates.
struct Adversary {
    schedule: Vec<u8>,
    cursor: usize,
    faults: u64,
}

impl Adversary {
    fn new(schedule: Vec<u8>) -> Self {
        Adversary {
            schedule,
            cursor: 0,
            faults: 0,
        }
    }

    fn transform(&mut self, items: Vec<Wire>) -> Vec<Wire> {
        let mut out = Vec::with_capacity(items.len());
        let mut iter = items.into_iter().peekable();
        while let Some(item) = iter.next() {
            match self.schedule.get(self.cursor).copied() {
                None => out.push(item),
                Some(b) => {
                    self.cursor += 1;
                    if b < 64 {
                        self.faults += 1; // dropped
                    } else if b < 112 {
                        self.faults += 1;
                        out.push(item);
                        out.push(item); // duplicated
                    } else if b < 160 {
                        // Swapped with the next item (if any).
                        if let Some(next) = iter.next() {
                            self.faults += 1;
                            out.push(next);
                        }
                        out.push(item);
                    } else {
                        out.push(item);
                    }
                }
            }
        }
        out
    }
}

/// Run the full exchange and return `(delivered (msg_id, len) in order,
/// wire fault count, sender retransmissions, receiver duplicates)`.
fn exchange(start_seq: u32, sizes: &[u32], schedule: Vec<u8>) -> (Vec<(u32, u32)>, u64, u64, u64) {
    let mut sender = mk_host(SENDER);
    let mut receiver = mk_host(RECEIVER);
    sender.tx[RECEIVER.idx()].next_seq = start_seq;
    receiver.rx[SENDER.idx()].expected = start_seq;
    for (msg_id, &len) in sizes.iter().enumerate() {
        sender.segment_message(RECEIVER, len, msg_id as u32);
    }

    let mut adversary = Adversary::new(schedule);
    let mut delivered = Vec::new();
    let mut now = SimTime::ZERO;
    let mut rounds = 0usize;
    while delivered.len() < sizes.len() {
        rounds += 1;
        assert!(rounds < 2000, "exchange failed to converge");

        let mut outbound: Vec<Wire> = sender
            .pump_window(RECEIVER, now)
            .into_iter()
            .map(|p| Wire::Data {
                payload_len: p.payload_len,
                tag: p.tag,
            })
            .collect();
        outbound.extend(
            sender
                .due_retransmissions(RECEIVER, now)
                .into_iter()
                .map(|p| Wire::Data {
                    payload_len: p.payload_len,
                    tag: p.tag,
                }),
        );

        let mut inbound = Vec::new();
        for item in adversary.transform(outbound) {
            let Wire::Data { payload_len, tag } = item else {
                unreachable!("only data flows sender -> receiver");
            };
            let meta = PacketMeta::decode(tag);
            assert_eq!(meta.kind, Kind::Data);
            let ack = match receiver.on_data(SENDER, payload_len, meta) {
                RxAction::Accepted { ack } | RxAction::Duplicate { ack } => Some(ack),
                RxAction::Delivered { ack, len, msg_id } => {
                    delivered.push((msg_id, len));
                    Some(ack)
                }
                RxAction::Dropped => None,
            };
            if let Some(seq) = ack {
                inbound.push(Wire::Ack { seq });
            }
        }
        for item in adversary.transform(inbound) {
            let Wire::Ack { seq } = item else {
                unreachable!("only acks flow receiver -> sender");
            };
            sender.on_ack(RECEIVER, seq);
        }

        // Advance past the (possibly backed-off) retransmission timeout so
        // the next round can resend anything that was lost.
        now += sender.retrans_delay(RECEIVER);
    }
    (
        delivered,
        adversary.faults,
        sender.tx[RECEIVER.idx()].retransmissions,
        receiver.rx[SENDER.idx()].duplicates,
    )
}

/// Sequence-space starting points: the beginning, right at the wrap, and
/// anywhere.
fn start_seq() -> impl Strategy<Value = u32> {
    prop_oneof![Just(0u32), (u32::MAX - 8)..=u32::MAX, any::<u32>(),]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exactly-once, in-order delivery under arbitrary drop/dup/reorder
    /// schedules, anywhere in the sequence ring.
    #[test]
    fn gbn_delivers_exactly_once_in_order(
        start in start_seq(),
        sizes in prop::collection::vec(1u32..9000, 1..6),
        schedule in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let (delivered, _, _, _) = exchange(start, &sizes, schedule);
        let expected: Vec<(u32, u32)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &len)| (i as u32, len))
            .collect();
        prop_assert_eq!(delivered, expected);
    }

    /// The reliability diagnostics stay consistent with the wire behaviour:
    /// a faithful wire never needs retransmissions nor sees duplicates,
    /// while recovery work only happens when faults were injected.
    #[test]
    fn gbn_diagnostics_consistent(
        start in start_seq(),
        sizes in prop::collection::vec(1u32..9000, 1..5),
        schedule in prop::collection::vec(any::<u8>(), 0..120),
    ) {
        let (_, faults, retrans, dups) = exchange(start, &sizes, schedule);
        if faults == 0 {
            // Faithful wire: no retransmissions, no duplicates.
            prop_assert_eq!(retrans, 0);
            prop_assert_eq!(dups, 0);
        } else {
            // Recovery work is bounded by what the adversary did: each fault
            // costs at most one go-back-N round of the (bounded) window.
            prop_assert!(retrans + dups <= faults * 2 * 8 + faults);
        }
    }
}

//! Parallel/sequential equivalence: the sharded conservative-PDES engine
//! must reproduce the sequential run exactly, for any shard count, on every
//! workload that reports zero cross-shard rank ties. Beyond the aggregate
//! totals the perf-gauntlet digest records (and `scripts/ci.sh`
//! byte-compares), the checks here are order-sensitive: the per-shard
//! application delivery logs must equal the sequential delivery log
//! attributed to each receiver's owner shard, and the full per-message
//! records (sender, receiver, length, send and delivery timestamps) must
//! match per owning shard.
//!
//! The one documented limitation — same-picosecond cross-shard arrivals
//! with identical producer times, which the parallel engine orders by shard
//! id instead of global schedule order — is pinned down by two scenarios at
//! the bottom:
//!
//! * the tie-heavy synchronized-stream workload, where ties *do* reorder
//!   the delivery log relative to sequential: the tie detector must flag
//!   it, the reordering must actually occur (the counter is not crying
//!   wolf), and the run must still be reproducible;
//! * the 32-switch Poisson workload, where ties occur at scale yet every
//!   order-sensitive observable still matches sequential — the empirical
//!   fact the CI digest gate relies on for the large gauntlet scenarios.

use itb_myrinet::core::{ClusterSpec, RoutingPolicy};
use itb_myrinet::gm::{run_cluster_shards, AppBehavior, Cluster, ParRunReport, ShardCluster};
use itb_myrinet::sim::{run_until, EventQueue, SimDuration, SimTime};
use itb_myrinet::topo::{partition, Partition};

/// Aggregate digest of one run: everything the perf-gauntlet digest
/// records about a load scenario.
#[derive(Debug, PartialEq, Eq)]
struct Digest {
    events: u64,
    sim_ps: u64,
    delivered: u64,
    injected: u64,
}

/// Order-sensitive observables of a sequential run, kept for per-shard
/// attribution: the delivery log as `(from, to)` pairs (message ids are
/// allocated per shard in parallel runs, so only the endpoints are
/// comparable) and every message record as
/// `(src, dst, len, sent_at, delivered_at)`.
struct SeqObservables {
    digest: Digest,
    delivery_log: Vec<(u16, u16)>,
    records: Vec<Rec>,
}

/// One message record row: `(src, dst, len, sent_at, delivered_at)`.
type Rec = (u16, u16, u32, u64, Option<u64>);

/// Per-shard `(expected, got)` views of the order-sensitive observables:
/// the delivery log restricted to receivers the shard owns, and the message
/// records restricted to senders the shard owns.
struct ShardView {
    expect_log: Vec<(u16, u16)>,
    got_log: Vec<(u16, u16)>,
    expect_recs: Vec<Rec>,
    got_recs: Vec<Rec>,
}

fn shard_views(seq: &SeqObservables, part: &Partition, worlds: &[ShardCluster]) -> Vec<ShardView> {
    worlds
        .iter()
        .enumerate()
        .map(|(s, world)| ShardView {
            expect_log: seq
                .delivery_log
                .iter()
                .copied()
                .filter(|&(_, to)| part.shard_of_host[to as usize] as usize == s)
                .collect(),
            got_log: world
                .cluster
                .delivery_log()
                .iter()
                .map(|&(from, to, _)| (from.0, to.0))
                .collect(),
            expect_recs: seq
                .records
                .iter()
                .copied()
                .filter(|&(src, ..)| part.shard_of_host[src as usize] as usize == s)
                .collect(),
            got_recs: record_rows(&world.cluster),
        })
        .collect()
}

fn record_rows(cluster: &Cluster) -> Vec<Rec> {
    let mut rows: Vec<_> = cluster
        .messages()
        .values()
        .map(|r| {
            (
                r.src.0,
                r.dst.0,
                r.len,
                r.sent_at.as_ps(),
                r.delivered_at.map(|t| t.as_ps()),
            )
        })
        .collect();
    rows.sort_unstable();
    rows
}

fn sequential_run(
    spec: &ClusterSpec,
    behaviors: &[AppBehavior],
    horizon: SimTime,
) -> SeqObservables {
    let mut cluster = spec.build(behaviors.to_vec());
    let mut q = EventQueue::new();
    cluster.start(&mut q);
    run_until(&mut cluster, &mut q, horizon);
    SeqObservables {
        digest: Digest {
            events: q.events_dispatched(),
            sim_ps: q.now().as_ps(),
            delivered: cluster.delivered_count() as u64,
            injected: cluster.net.stats().injected,
        },
        delivery_log: cluster
            .delivery_log()
            .iter()
            .map(|&(from, to, _)| (from.0, to.0))
            .collect(),
        records: record_rows(&cluster),
    }
}

fn parallel_run(
    spec: &ClusterSpec,
    behaviors: &[AppBehavior],
    threads: u32,
    horizon: SimTime,
) -> (Partition, Vec<ShardCluster>, ParRunReport) {
    let part = partition(spec.topology(), threads as usize, spec.seed);
    let replicas: Vec<Cluster> = (0..part.shards)
        .map(|_| spec.build(behaviors.to_vec()))
        .collect();
    let (worlds, report) = run_cluster_shards(replicas, &part, horizon);
    (part, worlds, report)
}

fn digest_of(report: &ParRunReport) -> Digest {
    Digest {
        events: report.events,
        sim_ps: report.sim_time.as_ps(),
        delivered: report.delivered,
        injected: report.injected,
    }
}

/// Full equivalence check of one parallel run against sequential
/// observables: aggregate digest, per-shard delivery-log order, and
/// per-shard message records.
fn assert_equivalent(
    seq: &SeqObservables,
    spec: &ClusterSpec,
    behaviors: &[AppBehavior],
    threads: u32,
    horizon: SimTime,
) {
    let (part, worlds, report) = parallel_run(spec, behaviors, threads, horizon);
    assert_eq!(
        report.cross_shard_ties, 0,
        "{threads}-shard run must be tie-free for the equivalence proof to apply"
    );
    assert_eq!(
        digest_of(&report),
        seq.digest,
        "{threads}-shard digest diverged"
    );

    for (s, v) in shard_views(seq, &part, &worlds).into_iter().enumerate() {
        // Delivery order: the shard's log must equal the sequential log
        // restricted to receivers this shard owns, in the same order.
        assert_eq!(
            v.got_log, v.expect_log,
            "shard {s} delivery log diverged (t={threads})"
        );
        // Message records: senders owned by this shard, with exact send and
        // delivery timestamps.
        assert_eq!(
            v.got_recs, v.expect_recs,
            "shard {s} message records diverged (t={threads})"
        );
    }
}

fn load_spec(switches: usize) -> (ClusterSpec, Vec<AppBehavior>) {
    let spec = ClusterSpec::irregular(switches, 1).with_routing(RoutingPolicy::Itb);
    let n = spec.num_hosts();
    let behaviors = vec![
        AppBehavior::Poisson {
            size: 512,
            mean_gap: SimDuration::from_us(40),
            limit: 0,
        };
        n
    ];
    (spec, behaviors)
}

#[test]
fn sharded_run_matches_sequential_order_sensitively() {
    let (spec, behaviors) = load_spec(8);
    let horizon = SimTime::ZERO + SimDuration::from_us(150);
    let seq = sequential_run(&spec, &behaviors, horizon);
    // A trivially empty run would make the equivalence vacuous.
    assert!(seq.digest.delivered > 0, "scenario must deliver traffic");
    assert!(seq.digest.injected > 0);
    assert!(!seq.delivery_log.is_empty());

    for threads in [1u32, 2, 4] {
        assert_equivalent(&seq, &spec, &behaviors, threads, horizon);
    }
}

#[test]
fn sharded_run_is_reproducible() {
    let (spec, behaviors) = load_spec(8);
    let horizon = SimTime::ZERO + SimDuration::from_us(100);
    let (_, _, a) = parallel_run(&spec, &behaviors, 4, horizon);
    let (_, _, b) = parallel_run(&spec, &behaviors, 4, horizon);
    assert_eq!(
        digest_of(&a),
        digest_of(&b),
        "same seed, same shard count must reproduce exactly"
    );
    assert_eq!(a.cross_shard_ties, b.cross_shard_ties);
}

#[test]
fn shard_count_clamps_to_topology() {
    // More requested shards than switches: the partitioner clamps, the run
    // still matches sequential.
    let (spec, behaviors) = load_spec(4);
    let horizon = SimTime::ZERO + SimDuration::from_us(80);
    let seq = sequential_run(&spec, &behaviors, horizon);
    assert_equivalent(&seq, &spec, &behaviors, 16, horizon);
}

/// The documented limitation, made concrete: a permutation stream where
/// every host starts sending at t = 0 over uniform link latencies. Flits
/// from different shards arrive at shared switches in the same picosecond
/// with identical producer times, so the parallel tie-break (shard id)
/// deviates from the sequential one (global schedule order). Three things
/// must hold for such runs: the tie counter flags them, the deviation is
/// *real* — some shard's delivery log is genuinely reordered relative to
/// sequential, so the counter is not crying wolf — and the run is still
/// reproducible for a fixed shard count. Byte-identity with sequential is
/// only promised for tie-free runs.
#[test]
fn tie_heavy_synchronized_streams_are_flagged_and_reproducible() {
    let spec = ClusterSpec::irregular(8, 1).with_routing(RoutingPolicy::Itb);
    let n = spec.num_hosts();
    let behaviors: Vec<AppBehavior> = (0..n)
        .map(|i| AppBehavior::Stream {
            dst: itb_myrinet::topo::HostId(((i + n / 2) % n) as u16),
            size: 512,
            count: 6,
        })
        .collect();
    let horizon = SimTime::ZERO + SimDuration::from_us(150);

    let seq = sequential_run(&spec, &behaviors, horizon);
    assert!(seq.digest.delivered > 0, "streams must deliver traffic");

    let (part, worlds, a) = parallel_run(&spec, &behaviors, 4, horizon);
    let (_, _, b) = parallel_run(&spec, &behaviors, 4, horizon);
    assert_eq!(digest_of(&a), digest_of(&b), "tied runs must reproduce");
    assert_eq!(a.cross_shard_ties, b.cross_shard_ties);
    assert!(
        a.cross_shard_ties > 0,
        "synchronized identical senders over uniform latencies must produce \
         cross-shard rank ties; if this starts failing the workload no longer \
         exercises the documented limitation"
    );
    // The tie-break difference must actually reorder an observable — this
    // is what makes the ties == 0 proof obligation meaningful. (Aggregate
    // totals still agree: the same messages are delivered, in a different
    // interleaving.)
    assert_eq!(digest_of(&a), seq.digest, "totals still match sequential");
    let reordered = shard_views(&seq, &part, &worlds)
        .iter()
        .any(|v| v.got_log != v.expect_log);
    assert!(
        reordered,
        "expected at least one shard's delivery log to deviate from the \
         sequential order under {} cross-shard ties",
        a.cross_shard_ties
    );
}

/// Ties at scale, the other way round: the 32-switch Poisson load — the
/// same family as the large perf-gauntlet scenarios — produces hundreds of
/// cross-shard rank ties (302 for this seed/horizon), yet every
/// order-sensitive observable still matches sequential: the tied events
/// commute in effect (distinct flits meeting at a switch in the same
/// picosecond from different input ports, arbitrated identically either
/// way). This is an empirical property of the workload, not a theorem —
/// which is exactly why this test and the CI 1-vs-4 digest byte-compare
/// exist: they re-verify it on every change instead of assuming it.
#[test]
fn poisson_at_scale_ties_yet_matches_sequential_order_sensitively() {
    let (spec, behaviors) = load_spec(32);
    let horizon = SimTime::ZERO + SimDuration::from_us(300);
    let seq = sequential_run(&spec, &behaviors, horizon);
    let (part, worlds, report) = parallel_run(&spec, &behaviors, 4, horizon);
    assert!(
        report.cross_shard_ties > 0,
        "32sw Poisson must exercise the tied-but-benign regime; if it went \
         tie-free, move this scenario under assert_equivalent instead"
    );
    assert_eq!(digest_of(&report), seq.digest, "digest diverged");
    for (s, v) in shard_views(&seq, &part, &worlds).into_iter().enumerate() {
        assert_eq!(v.got_log, v.expect_log, "shard {s} delivery log diverged");
        assert_eq!(v.got_recs, v.expect_recs, "shard {s} records diverged");
    }
}

//! Parallel/sequential equivalence: the sharded conservative-PDES engine
//! must reproduce the sequential run's observable totals exactly, for any
//! shard count. This is the determinism contract `scripts/ci.sh` enforces
//! on the perf-gauntlet digest; here it is checked in-process at 1, 2 and
//! 4 shards against the plain `run_until` loop.

use itb_myrinet::core::{ClusterSpec, RoutingPolicy};
use itb_myrinet::gm::AppBehavior;
use itb_myrinet::sim::{run_until, EventQueue, SimDuration, SimTime};

/// Observable digest of one run: everything the perf-gauntlet digest
/// records about a load scenario.
#[derive(Debug, PartialEq, Eq)]
struct Digest {
    events: u64,
    sim_ps: u64,
    delivered: u64,
    injected: u64,
}

fn load_spec(switches: usize) -> (ClusterSpec, Vec<AppBehavior>) {
    let spec = ClusterSpec::irregular(switches, 1).with_routing(RoutingPolicy::Itb);
    let n = spec.num_hosts();
    let behaviors = vec![
        AppBehavior::Poisson {
            size: 512,
            mean_gap: SimDuration::from_us(40),
            limit: 0,
        };
        n
    ];
    (spec, behaviors)
}

fn sequential_digest(spec: &ClusterSpec, behaviors: &[AppBehavior], horizon: SimTime) -> Digest {
    let mut cluster = spec.build(behaviors.to_vec());
    let mut q = EventQueue::new();
    cluster.start(&mut q);
    run_until(&mut cluster, &mut q, horizon);
    Digest {
        events: q.events_dispatched(),
        sim_ps: q.now().as_ps(),
        delivered: cluster.delivered_count() as u64,
        injected: cluster.net.stats().injected,
    }
}

fn parallel_digest(
    spec: &ClusterSpec,
    behaviors: &[AppBehavior],
    threads: u32,
    horizon: SimTime,
) -> Digest {
    let report = spec.run_parallel(behaviors.to_vec(), threads, horizon);
    Digest {
        events: report.events,
        sim_ps: report.sim_time.as_ps(),
        delivered: report.delivered,
        injected: report.injected,
    }
}

#[test]
fn sharded_run_matches_sequential_totals() {
    let (spec, behaviors) = load_spec(8);
    let horizon = SimTime::ZERO + SimDuration::from_us(150);
    let seq = sequential_digest(&spec, &behaviors, horizon);
    // A trivially empty run would make the equivalence vacuous.
    assert!(seq.delivered > 0, "scenario must deliver traffic: {seq:?}");
    assert!(seq.injected > 0);

    for threads in [1u32, 2, 4] {
        let par = parallel_digest(&spec, &behaviors, threads, horizon);
        assert_eq!(par, seq, "{threads}-shard run diverged from sequential");
    }
}

#[test]
fn sharded_run_is_reproducible() {
    let (spec, behaviors) = load_spec(8);
    let horizon = SimTime::ZERO + SimDuration::from_us(100);
    let a = parallel_digest(&spec, &behaviors, 4, horizon);
    let b = parallel_digest(&spec, &behaviors, 4, horizon);
    assert_eq!(a, b, "same seed, same shard count must reproduce exactly");
}

#[test]
fn shard_count_clamps_to_topology() {
    // More requested shards than switches: the partitioner clamps, the run
    // still matches sequential.
    let (spec, behaviors) = load_spec(4);
    let horizon = SimTime::ZERO + SimDuration::from_us(80);
    let seq = sequential_digest(&spec, &behaviors, horizon);
    let par = parallel_digest(&spec, &behaviors, 16, horizon);
    assert_eq!(par, seq);
}

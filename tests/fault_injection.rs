//! Failure injection across the stack: receive-pool exhaustion (flushes),
//! ITB-host starvation, seeded fault plans (probabilistic drops, link-down
//! windows, NIC crashes), and recovery through the GM reliability layer.

use itb_myrinet::core::{ClusterSpec, McpFlavor};
use itb_myrinet::gm::AppBehavior;
use itb_myrinet::net::FaultPlan;
use itb_myrinet::routing::figures;
use itb_myrinet::sim::{run_until, EventQueue, SimTime};
use itb_myrinet::topo::builders::fig6_testbed;

#[test]
fn starved_receiver_recovers_all_messages() {
    // One receive buffer at every NIC + a 20-message burst: flushes are
    // guaranteed, go-back-N must deliver everything exactly once anyway.
    let tb = fig6_testbed();
    let spec = ClusterSpec::fig6_testbed()
        .with_mcp(McpFlavor::Original)
        .with_recv_buffers(1)
        .with_flush_on_overflow(true);
    let behaviors = vec![
        AppBehavior::Stream {
            dst: tb.host2,
            size: 3000,
            count: 20,
        },
        AppBehavior::Sink,
        AppBehavior::Sink,
    ];
    let mut c = spec.build(behaviors);
    let mut q = EventQueue::new();
    c.start(&mut q);
    run_until(&mut c, &mut q, SimTime::from_ms(400));
    assert_eq!(c.delivered_count(), 20);
    assert!(
        c.nic(tb.host2).stats().flushed > 0,
        "injection must trigger"
    );
    assert!(
        c.host(tb.host1).tx[tb.host2.idx()].retransmissions > 0,
        "recovery must go through retransmission"
    );
    // Exactly-once at the app level is already asserted by delivered_count;
    // any duplicate arrivals (go-back-N resends overlapping in-flight
    // packets) must have been discarded, not re-delivered.
    assert_eq!(c.messages().len(), 20);
}

#[test]
fn starved_in_transit_host_recovers_itb_traffic() {
    // The ITB host has a single receive buffer; bursty ITB-routed traffic
    // through it gets flushed mid-path and must still arrive via
    // retransmission — the §4 scenario ("this packet will be flushed. The
    // GM software has mechanisms to retransmit missing packets").
    let tb = fig6_testbed();
    let spec = ClusterSpec::fig6_testbed()
        .with_mcp(McpFlavor::Itb)
        .with_recv_buffers(1)
        .with_flush_on_overflow(true)
        .with_route_override(figures::fig8_itb_route(&tb))
        .with_route_override(figures::fig8_return_route(&tb));
    let behaviors = vec![
        AppBehavior::Stream {
            dst: tb.host2,
            size: 3000,
            count: 15,
        },
        AppBehavior::Sink,
        AppBehavior::Sink,
    ];
    let mut c = spec.build(behaviors);
    let mut q = EventQueue::new();
    c.start(&mut q);
    run_until(&mut c, &mut q, SimTime::from_ms(400));
    assert_eq!(
        c.delivered_count(),
        15,
        "all messages despite mid-path drops"
    );
    let itb_nic = c.nic(tb.itb_host);
    assert!(
        itb_nic.stats().itb_forwards > 0,
        "some packets did take the in-transit path"
    );
    // Either the ITB host or the final receiver flushed something.
    let drops = itb_nic.stats().flushed + c.nic(tb.host2).stats().flushed;
    assert!(
        drops > 0,
        "starvation must have dropped at least one packet"
    );
}

#[test]
fn crc_corruption_recovers_via_retransmission() {
    // Every 4th injected packet (data or ack) has its CRC damaged; the
    // receiving NIC drops it at the tail check and go-back-N must still
    // deliver every message exactly once.
    let tb = fig6_testbed();
    let spec = ClusterSpec::fig6_testbed()
        .with_mcp(McpFlavor::Original)
        .with_corruption_every(4);
    let behaviors = vec![
        AppBehavior::Stream {
            dst: tb.host2,
            size: 2000,
            count: 12,
        },
        AppBehavior::Sink,
        AppBehavior::Sink,
    ];
    let mut c = spec.build(behaviors);
    let mut q = EventQueue::new();
    c.start(&mut q);
    run_until(&mut c, &mut q, SimTime::from_ms(400));
    assert_eq!(c.delivered_count(), 12);
    let drops: u64 = [tb.host1, tb.itb_host, tb.host2]
        .iter()
        .map(|&h| c.nic(h).stats().crc_drops)
        .sum();
    assert!(drops > 0, "corruption must have dropped packets");
    assert!(
        c.host(tb.host1).tx[tb.host2.idx()].retransmissions > 0,
        "recovery via retransmission"
    );
}

#[test]
fn corrupted_itb_packet_dropped_at_destination_and_recovered() {
    // A corrupted packet on the ITB route is forwarded unverified (cut-
    // through cannot check the CRC before re-injecting) and dropped at the
    // final destination's tail check.
    let tb = fig6_testbed();
    let spec = ClusterSpec::fig6_testbed()
        .with_mcp(McpFlavor::Itb)
        .with_corruption_every(3)
        .with_route_override(figures::fig8_itb_route(&tb))
        .with_route_override(figures::fig8_return_route(&tb));
    let behaviors = vec![
        AppBehavior::Stream {
            dst: tb.host2,
            size: 1500,
            count: 10,
        },
        AppBehavior::Sink,
        AppBehavior::Sink,
    ];
    let mut c = spec.build(behaviors);
    let mut q = EventQueue::new();
    c.start(&mut q);
    run_until(&mut c, &mut q, SimTime::from_ms(400));
    assert_eq!(c.delivered_count(), 10);
    assert!(c.nic(tb.host2).stats().crc_drops > 0 || c.nic(tb.host1).stats().crc_drops > 0);
    // The in-transit host never drops on CRC: it forwards without checking.
    assert_eq!(c.nic(tb.itb_host).stats().crc_drops, 0);
    assert!(c.nic(tb.itb_host).stats().itb_forwards > 0);
}

#[test]
fn no_reliability_means_losses_stay_lost() {
    // Sanity check of the control: with reliability off and a starved
    // receiver, some messages never arrive.
    let tb = fig6_testbed();
    let mut spec = ClusterSpec::fig6_testbed()
        .with_mcp(McpFlavor::Original)
        .with_recv_buffers(1)
        .with_flush_on_overflow(true);
    spec.calib.gm.reliability = false;
    let behaviors = vec![
        AppBehavior::Stream {
            dst: tb.host2,
            size: 3000,
            count: 20,
        },
        AppBehavior::Sink,
        AppBehavior::Sink,
    ];
    let mut c = spec.build(behaviors);
    let mut q = EventQueue::new();
    c.start(&mut q);
    run_until(&mut c, &mut q, SimTime::from_ms(400));
    assert!(
        c.delivered_count() < 20,
        "without retransmission flushes must be terminal"
    );
}

#[test]
fn retransmission_preserves_payload_sizes() {
    // Mixed sizes under starvation: every delivered record keeps its length.
    let tb = fig6_testbed();
    let spec = ClusterSpec::fig6_testbed()
        .with_mcp(McpFlavor::Original)
        .with_recv_buffers(1)
        .with_flush_on_overflow(true);
    let behaviors = vec![
        AppBehavior::Stream {
            dst: tb.host2,
            size: 9000, // 3 packets per message
            count: 8,
        },
        AppBehavior::Sink,
        AppBehavior::Sink,
    ];
    let mut c = spec.build(behaviors);
    let mut q = EventQueue::new();
    c.start(&mut q);
    run_until(&mut c, &mut q, SimTime::from_ms(400));
    assert_eq!(c.delivered_count(), 8);
    for rec in c.messages().values() {
        assert_eq!(rec.len, 9000);
        assert!(rec.delivered_at.is_some());
    }
}

#[test]
fn probabilistic_drops_recover_exactly_once() {
    // Seeded per-link drop/corrupt noise on every link: the reliability
    // layer must still deliver every message exactly once.
    let tb = fig6_testbed();
    let spec = ClusterSpec::fig6_testbed()
        .with_mcp(McpFlavor::Original)
        .with_faults(
            FaultPlan::seeded(11)
                .with_drop_prob(0.03)
                .with_corrupt_prob(0.01),
        );
    let behaviors = vec![
        AppBehavior::Stream {
            dst: tb.host2,
            size: 2048,
            count: 25,
        },
        AppBehavior::Sink,
        AppBehavior::Sink,
    ];
    let mut c = spec.build(behaviors);
    let mut q = EventQueue::new();
    c.start(&mut q);
    run_until(&mut c, &mut q, SimTime::from_ms(400));
    assert_eq!(c.delivered_count(), 25);
    let stats = c.net.stats();
    assert!(
        stats.fault_drops + stats.fault_corrupts > 0,
        "the plan must actually inject faults"
    );
    assert!(
        c.host(tb.host1).tx[tb.host2.idx()].retransmissions > 0,
        "losses recover via retransmission"
    );
}

#[test]
fn link_down_window_recovers() {
    // The first inter-switch cable goes dark for 200 us while a stream is
    // crossing it; every head that arrives during the outage is lost and
    // must be retransmitted after it ends.
    let tb = fig6_testbed();
    let spec = ClusterSpec::fig6_testbed()
        .with_mcp(McpFlavor::Original)
        .with_faults(FaultPlan::seeded(3).with_down_window(
            tb.cable_a,
            SimTime::from_us(20),
            SimTime::from_us(220),
        ));
    let behaviors = vec![
        AppBehavior::Stream {
            dst: tb.host2,
            size: 4096,
            count: 20,
        },
        AppBehavior::Sink,
        AppBehavior::Sink,
    ];
    let mut c = spec.build(behaviors);
    let mut q = EventQueue::new();
    c.start(&mut q);
    run_until(&mut c, &mut q, SimTime::from_ms(400));
    assert_eq!(c.delivered_count(), 20, "traffic resumes after the outage");
    assert!(
        c.net.stats().link_down_drops > 0,
        "the outage must have eaten packets"
    );
    assert!(c.host(tb.host1).tx[tb.host2.idx()].retransmissions > 0);
}

#[test]
fn itb_host_crash_flushes_in_transit_packets_and_recovers() {
    // The in-transit host's NIC crashes while ITB traffic flows through
    // it: buffered in-transit packets are flushed, arrivals during the
    // outage are discarded, and go-back-N still delivers everything.
    let tb = fig6_testbed();
    let spec = ClusterSpec::fig6_testbed()
        .with_mcp(McpFlavor::Itb)
        .with_route_override(figures::fig8_itb_route(&tb))
        .with_route_override(figures::fig8_return_route(&tb))
        .with_faults(FaultPlan::seeded(5).with_crash(
            tb.itb_host,
            SimTime::from_us(30),
            SimTime::from_us(400),
        ));
    let behaviors = vec![
        AppBehavior::Stream {
            dst: tb.host2,
            size: 2048,
            count: 20,
        },
        AppBehavior::Sink,
        AppBehavior::Sink,
    ];
    let mut c = spec.build(behaviors);
    let mut q = EventQueue::new();
    c.start(&mut q);
    run_until(&mut c, &mut q, SimTime::from_ms(400));
    assert_eq!(c.delivered_count(), 20, "all messages despite the crash");
    let itb_stats = c.nic(tb.itb_host).stats();
    assert!(
        itb_stats.crash_flushes > 0,
        "the crash must have flushed or discarded packets"
    );
    assert!(
        itb_stats.itb_forwards > 0,
        "forwarding resumed after recovery"
    );
    assert!(!c.nic(tb.itb_host).is_crashed(), "NIC recovered");
    let snap = c.metrics_snapshot(SimTime::from_ms(400));
    assert_eq!(snap.counters["gm.crashes_injected"], 1);
    assert!(snap.counters["gm.drops_observed"] > 0);
}

#[test]
fn retry_cap_surfaces_connection_failure() {
    // A black-hole link (100% drop) with a small retry budget: instead of
    // resending forever, the sender must declare the connection failed and
    // surface it.
    let tb = fig6_testbed();
    let mut spec = ClusterSpec::fig6_testbed()
        .with_mcp(McpFlavor::Original)
        .with_faults(FaultPlan::seeded(1).with_drop_prob(1.0));
    spec.calib.gm.max_retries = 2;
    let behaviors = vec![
        AppBehavior::Stream {
            dst: tb.host2,
            size: 1024,
            count: 3,
        },
        AppBehavior::Sink,
        AppBehavior::Sink,
    ];
    let mut c = spec.build(behaviors);
    let mut q = EventQueue::new();
    c.start(&mut q);
    run_until(&mut c, &mut q, SimTime::from_ms(400));
    assert_eq!(c.delivered_count(), 0, "nothing can get through");
    assert_eq!(
        c.connection_failures(),
        &[(tb.host1, tb.host2)],
        "the failure must be surfaced, once"
    );
    assert!(c.host(tb.host1).conn_failed(tb.host2));
    let snap = c.metrics_snapshot(SimTime::from_ms(400));
    assert_eq!(snap.counters["gm.connections_failed"], 1);
    assert!(snap.counters["gm.packets_abandoned"] > 0);
    // Sends after the failure are refused quietly, not queued forever.
    assert!(!c.host(tb.host1).has_unacked(tb.host2));
}

#[test]
fn same_seed_same_fault_schedule() {
    // Two runs of the identical spec must produce byte-identical metrics:
    // fault injection shares the simulator's determinism guarantees.
    let run = || {
        let tb = fig6_testbed();
        let spec = ClusterSpec::fig6_testbed()
            .with_mcp(McpFlavor::Original)
            .with_faults(
                FaultPlan::seeded(42)
                    .with_drop_prob(0.02)
                    .with_corrupt_prob(0.01)
                    .with_down_window(tb.cable_a, SimTime::from_us(50), SimTime::from_us(150)),
            );
        let behaviors = vec![
            AppBehavior::Stream {
                dst: tb.host2,
                size: 3000,
                count: 15,
            },
            AppBehavior::Sink,
            AppBehavior::Sink,
        ];
        let mut c = spec.build(behaviors);
        let mut q = EventQueue::new();
        c.start(&mut q);
        run_until(&mut c, &mut q, SimTime::from_ms(400));
        c.metrics_snapshot(SimTime::from_ms(400))
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.counters, b.counters,
        "fault schedule must be deterministic"
    );
}

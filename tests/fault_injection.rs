//! Failure injection across the stack: receive-pool exhaustion (flushes),
//! ITB-host starvation, and recovery through the GM reliability layer.

use itb_myrinet::core::{ClusterSpec, McpFlavor};
use itb_myrinet::gm::AppBehavior;
use itb_myrinet::routing::figures;
use itb_myrinet::sim::{run_until, EventQueue, SimTime};
use itb_myrinet::topo::builders::fig6_testbed;

#[test]
fn starved_receiver_recovers_all_messages() {
    // One receive buffer at every NIC + a 20-message burst: flushes are
    // guaranteed, go-back-N must deliver everything exactly once anyway.
    let tb = fig6_testbed();
    let spec = ClusterSpec::fig6_testbed()
        .with_mcp(McpFlavor::Original)
        .with_recv_buffers(1)
        .with_flush_on_overflow(true);
    let behaviors = vec![
        AppBehavior::Stream {
            dst: tb.host2,
            size: 3000,
            count: 20,
        },
        AppBehavior::Sink,
        AppBehavior::Sink,
    ];
    let mut c = spec.build(behaviors);
    let mut q = EventQueue::new();
    c.start(&mut q);
    run_until(&mut c, &mut q, SimTime::from_ms(400));
    assert_eq!(c.delivered_count(), 20);
    assert!(
        c.nic(tb.host2).stats().flushed > 0,
        "injection must trigger"
    );
    assert!(
        c.host(tb.host1).tx[tb.host2.idx()].retransmissions > 0,
        "recovery must go through retransmission"
    );
    // Exactly-once at the app level is already asserted by delivered_count;
    // any duplicate arrivals (go-back-N resends overlapping in-flight
    // packets) must have been discarded, not re-delivered.
    assert_eq!(c.messages().len(), 20);
}

#[test]
fn starved_in_transit_host_recovers_itb_traffic() {
    // The ITB host has a single receive buffer; bursty ITB-routed traffic
    // through it gets flushed mid-path and must still arrive via
    // retransmission — the §4 scenario ("this packet will be flushed. The
    // GM software has mechanisms to retransmit missing packets").
    let tb = fig6_testbed();
    let spec = ClusterSpec::fig6_testbed()
        .with_mcp(McpFlavor::Itb)
        .with_recv_buffers(1)
        .with_flush_on_overflow(true)
        .with_route_override(figures::fig8_itb_route(&tb))
        .with_route_override(figures::fig8_return_route(&tb));
    let behaviors = vec![
        AppBehavior::Stream {
            dst: tb.host2,
            size: 3000,
            count: 15,
        },
        AppBehavior::Sink,
        AppBehavior::Sink,
    ];
    let mut c = spec.build(behaviors);
    let mut q = EventQueue::new();
    c.start(&mut q);
    run_until(&mut c, &mut q, SimTime::from_ms(400));
    assert_eq!(
        c.delivered_count(),
        15,
        "all messages despite mid-path drops"
    );
    let itb_nic = c.nic(tb.itb_host);
    assert!(
        itb_nic.stats().itb_forwards > 0,
        "some packets did take the in-transit path"
    );
    // Either the ITB host or the final receiver flushed something.
    let drops = itb_nic.stats().flushed + c.nic(tb.host2).stats().flushed;
    assert!(
        drops > 0,
        "starvation must have dropped at least one packet"
    );
}

#[test]
fn crc_corruption_recovers_via_retransmission() {
    // Every 4th injected packet (data or ack) has its CRC damaged; the
    // receiving NIC drops it at the tail check and go-back-N must still
    // deliver every message exactly once.
    let tb = fig6_testbed();
    let spec = ClusterSpec::fig6_testbed()
        .with_mcp(McpFlavor::Original)
        .with_corruption_every(4);
    let behaviors = vec![
        AppBehavior::Stream {
            dst: tb.host2,
            size: 2000,
            count: 12,
        },
        AppBehavior::Sink,
        AppBehavior::Sink,
    ];
    let mut c = spec.build(behaviors);
    let mut q = EventQueue::new();
    c.start(&mut q);
    run_until(&mut c, &mut q, SimTime::from_ms(400));
    assert_eq!(c.delivered_count(), 12);
    let drops: u64 = [tb.host1, tb.itb_host, tb.host2]
        .iter()
        .map(|&h| c.nic(h).stats().crc_drops)
        .sum();
    assert!(drops > 0, "corruption must have dropped packets");
    assert!(
        c.host(tb.host1).tx[tb.host2.idx()].retransmissions > 0,
        "recovery via retransmission"
    );
}

#[test]
fn corrupted_itb_packet_dropped_at_destination_and_recovered() {
    // A corrupted packet on the ITB route is forwarded unverified (cut-
    // through cannot check the CRC before re-injecting) and dropped at the
    // final destination's tail check.
    let tb = fig6_testbed();
    let spec = ClusterSpec::fig6_testbed()
        .with_mcp(McpFlavor::Itb)
        .with_corruption_every(3)
        .with_route_override(figures::fig8_itb_route(&tb))
        .with_route_override(figures::fig8_return_route(&tb));
    let behaviors = vec![
        AppBehavior::Stream {
            dst: tb.host2,
            size: 1500,
            count: 10,
        },
        AppBehavior::Sink,
        AppBehavior::Sink,
    ];
    let mut c = spec.build(behaviors);
    let mut q = EventQueue::new();
    c.start(&mut q);
    run_until(&mut c, &mut q, SimTime::from_ms(400));
    assert_eq!(c.delivered_count(), 10);
    assert!(c.nic(tb.host2).stats().crc_drops > 0 || c.nic(tb.host1).stats().crc_drops > 0);
    // The in-transit host never drops on CRC: it forwards without checking.
    assert_eq!(c.nic(tb.itb_host).stats().crc_drops, 0);
    assert!(c.nic(tb.itb_host).stats().itb_forwards > 0);
}

#[test]
fn no_reliability_means_losses_stay_lost() {
    // Sanity check of the control: with reliability off and a starved
    // receiver, some messages never arrive.
    let tb = fig6_testbed();
    let mut spec = ClusterSpec::fig6_testbed()
        .with_mcp(McpFlavor::Original)
        .with_recv_buffers(1)
        .with_flush_on_overflow(true);
    spec.calib.gm.reliability = false;
    let behaviors = vec![
        AppBehavior::Stream {
            dst: tb.host2,
            size: 3000,
            count: 20,
        },
        AppBehavior::Sink,
        AppBehavior::Sink,
    ];
    let mut c = spec.build(behaviors);
    let mut q = EventQueue::new();
    c.start(&mut q);
    run_until(&mut c, &mut q, SimTime::from_ms(400));
    assert!(
        c.delivered_count() < 20,
        "without retransmission flushes must be terminal"
    );
}

#[test]
fn retransmission_preserves_payload_sizes() {
    // Mixed sizes under starvation: every delivered record keeps its length.
    let tb = fig6_testbed();
    let spec = ClusterSpec::fig6_testbed()
        .with_mcp(McpFlavor::Original)
        .with_recv_buffers(1)
        .with_flush_on_overflow(true);
    let behaviors = vec![
        AppBehavior::Stream {
            dst: tb.host2,
            size: 9000, // 3 packets per message
            count: 8,
        },
        AppBehavior::Sink,
        AppBehavior::Sink,
    ];
    let mut c = spec.build(behaviors);
    let mut q = EventQueue::new();
    c.start(&mut q);
    run_until(&mut c, &mut q, SimTime::from_ms(400));
    assert_eq!(c.delivered_count(), 8);
    for rec in c.messages().values() {
        assert_eq!(rec.len, 9000);
        assert!(rec.delivered_at.is_some());
    }
}

//! Integration tests for the deep-observability subsystem: the sim-time
//! timeline sampler and the runtime health monitors, driven through the
//! same cluster API the bench binaries use.

use itb_myrinet::core::ClusterSpec;
use itb_myrinet::gm::AppBehavior;
use itb_myrinet::net::FaultPlan;
use itb_myrinet::nic::McpFlavor;
use itb_myrinet::routing::figures;
use itb_myrinet::sim::{run_until, EventQueue, SimDuration, SimTime};

/// A healthy streaming run: the timeline sampler records periodic deltas
/// whose counters sum back to the final snapshot, and the health report
/// comes back clean with the NIC receive pools audited.
#[test]
fn healthy_run_yields_timeline_samples_and_clean_health_report() {
    let spec = ClusterSpec::fig6_testbed().with_mcp(McpFlavor::Itb);
    let tb = spec.testbed.clone().expect("testbed spec");
    let mut behaviors = vec![AppBehavior::Sink; spec.num_hosts()];
    behaviors[tb.host1.idx()] = AppBehavior::Stream {
        dst: tb.host2,
        size: 256,
        count: 8,
    };
    let mut c = spec.build(behaviors);
    c.enable_timeline(SimDuration::from_us(50));
    c.enable_health(SimDuration::from_us(50), SimDuration::from_ms(5));
    let mut q = EventQueue::new();
    c.start(&mut q);
    let horizon = SimTime::from_ms(20);
    run_until(&mut c, &mut q, horizon);
    let now = q.now();
    assert_eq!(c.delivered_count(), 8, "loss-free fabric delivers all");

    let timeline = c.take_timeline().expect("timeline was enabled");
    assert!(
        !timeline.is_empty(),
        "a multi-interval run must record samples"
    );
    assert_eq!(timeline.interval_ns(), 50_000);
    // Interval deltas are a partition of the run: per-counter sums must
    // equal the final cumulative snapshot (the conservation property the
    // health monitor checks online).
    let finale = c.metrics_snapshot(now);
    let mut summed = 0u64;
    // rows() materializes frame-path samples into the classic artifact
    // shape; the cluster records through the allocation-free frame path.
    for s in timeline.rows() {
        assert_eq!(s.interval_ns, 50_000);
        summed += s.delta.counters.get("net.delivered").copied().unwrap_or(0);
    }
    assert_eq!(
        summed, finale.counters["net.delivered"],
        "timeline deltas must sum to the cumulative counter"
    );
    // JSONL export: one line per sample, each carrying its sim timestamp.
    let jsonl = timeline.to_jsonl();
    assert_eq!(jsonl.lines().count(), timeline.len());

    let report = c.health_report(now).expect("health was enabled");
    assert!(report.healthy, "clean run flagged: {:?}", report.violations);
    assert!(report.samples > 0);
    assert!(
        report.buffers_audited > 0,
        "end-of-run audit must cover the NIC receive pools"
    );
    assert_eq!(report.end_ns, now.as_ps() / 1_000);
}

/// A deliberately unroutable fabric: every cable is down for the whole run,
/// GM's shrunken retry budget abandons quickly, and the stall watchdog must
/// fire with the undelivered messages in the blocked set.
#[test]
fn stall_watchdog_flags_an_unroutable_fabric() {
    let horizon = SimTime::from_ms(25);
    let mut spec = ClusterSpec::fig6_testbed().with_mcp(McpFlavor::Itb);
    spec.calib.gm.max_retries = 2;
    spec.calib.gm.retrans_backoff_cap = SimDuration::from_ms(1);
    let tb = spec.testbed.clone().expect("testbed spec");
    let plan = FaultPlan::seeded(0x57A11)
        .with_down_window(tb.cable_a, SimTime::ZERO, horizon)
        .with_down_window(tb.cable_b, SimTime::ZERO, horizon)
        .with_down_window(tb.loop_cable, SimTime::ZERO, horizon);
    let spec = spec
        .with_route_override(figures::fig8_itb_route(&tb))
        .with_route_override(figures::fig8_return_route(&tb))
        .with_faults(plan);

    let mut behaviors = vec![AppBehavior::Sink; spec.num_hosts()];
    behaviors[tb.host1.idx()] = AppBehavior::Stream {
        dst: tb.host2,
        size: 512,
        count: 2,
    };
    let mut c = spec.build(behaviors);
    c.enable_health(SimDuration::from_us(100), SimDuration::from_ms(3));
    let mut q = EventQueue::new();
    c.start(&mut q);
    run_until(&mut c, &mut q, horizon);

    let report = c.health_report(q.now()).expect("health was enabled");
    assert!(!report.healthy, "an unroutable fabric must be flagged");
    let stall = report
        .violations
        .iter()
        .find(|v| v.check == "stall_watchdog")
        .expect("the stall watchdog must fire");
    assert!(
        stall.blocked.iter().any(|b| b.starts_with("msg ")),
        "blocked set must name the undelivered messages: {:?}",
        stall.blocked
    );
    assert!(
        report
            .violations
            .iter()
            .all(|v| v.check == "stall_watchdog"),
        "only the watchdog should fire: {:?}",
        report.violations
    );
}

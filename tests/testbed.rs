//! Cross-crate integration: the Figure 6 testbed end to end through the
//! umbrella crate's public API.

use itb_myrinet::core::experiments::{fig7, fig8, ping_pong};
use itb_myrinet::core::{ClusterSpec, McpFlavor, RoutingPolicy};
use itb_myrinet::routing::figures;
use itb_myrinet::routing::wire::Header;
use itb_myrinet::topo::builders::fig6_testbed;

#[test]
fn quickstart_api_works_as_documented() {
    let spec = ClusterSpec::fig6_testbed()
        .with_mcp(McpFlavor::Itb)
        .with_routing(RoutingPolicy::UpDown);
    let report = spec.ping_pong(0, 2, &[64, 1024], 5);
    assert_eq!(report.points.len(), 2);
    assert!(report.points[0].half_rtt_ns.mean() > 0.0);
    assert!(report.points[1].half_rtt_ns.mean() > report.points[0].half_rtt_ns.mean());
}

#[test]
fn fig7_headline_numbers_match_paper_band() {
    let f = fig7(20);
    let (avg, max) = f.summary();
    // Paper: "Difference in measured latencies does not exceed 300 ns and,
    // on average, is equal to 125 ns."
    assert!((80.0..=250.0).contains(&avg), "avg {avg} ns");
    assert!(max <= 330.0, "max {max} ns");
    // Monotone latency curves.
    for r in [&f.original, &f.modified] {
        let s = r.to_series();
        for w in s.points.windows(2) {
            assert!(w[1].1 >= w[0].1, "{}: latency must grow with size", r.label);
        }
    }
}

#[test]
fn fig8_headline_numbers_match_paper_band() {
    let f = fig8(20);
    let s = f.summary();
    // Paper: "the cost of detecting an ITB packet and handling its
    // re-injection is around 1.3 us".
    assert!(
        (1.0..=1.6).contains(&s.mean_overhead_us),
        "per-ITB {} us",
        s.mean_overhead_us
    );
    // Paper: relative overhead ranges from 10% (short) to 3% (long); our
    // testbed's base latencies differ a little, but the direction must hold
    // and the short-packet value must be within a few x.
    assert!(s.relative_small_pct > 2.0 * s.relative_large_pct);
    assert!((3.0..=15.0).contains(&s.relative_small_pct));
    // The overhead curve is flat: cut-through forwarding is size-independent.
    let over = f.overhead_us();
    let spread = over.max_y()
        - over
            .points
            .iter()
            .map(|&(_, y)| y)
            .fold(f64::INFINITY, f64::min);
    assert!(
        spread < 0.3,
        "per-ITB overhead should be ~constant, spread {spread}"
    );
}

#[test]
fn testbed_routes_cross_five_switches_each() {
    let tb = fig6_testbed();
    let ud = figures::fig8_ud_route(&tb);
    let itb = figures::fig8_itb_route(&tb);
    assert_eq!(ud.total_crossings(), 5);
    assert_eq!(itb.total_crossings(), 5);
    assert_eq!(itb.itb_count(), 1);
    assert_eq!(
        figures::port_kind_profile(&tb.topo, &ud),
        figures::port_kind_profile(&tb.topo, &itb)
    );
}

#[test]
fn header_grows_by_three_bytes_per_itb() {
    // The Figure 3 format: each ITB adds a 2-byte tag + 1 length byte.
    let tb = fig6_testbed();
    let ud = Header::encode(&figures::fig8_ud_route(&tb));
    let itb = Header::encode(&figures::fig8_itb_route(&tb));
    assert_eq!(itb.len(), ud.len() + 3);
}

#[test]
fn custom_pair_ping_pong_via_in_transit_host() {
    // Host1 <-> in-transit host pings work too (they share a switch).
    let spec = ClusterSpec::fig6_testbed().with_mcp(McpFlavor::Itb);
    let tb = spec.testbed.clone().unwrap();
    let r = ping_pong(&spec, tb.host1, tb.itb_host, &[128], 5, 1);
    assert_eq!(r.points[0].half_rtt_ns.count(), 5);
    // One switch crossing each way, but over LAN ports both sides (400 ns
    // fall-through) versus the two-crossing LAN→SAN path (350 ns total), so
    // fewer crossings does NOT mean faster here — the paper's own point
    // that switch latency depends on the traversed port kinds. Just check
    // both pairs land in the same ballpark.
    let r2 = ping_pong(&spec, tb.host1, tb.host2, &[128], 5, 1);
    let (a, b) = (
        r.points[0].half_rtt_ns.mean(),
        r2.points[0].half_rtt_ns.mean(),
    );
    assert!(
        (a - b).abs() < 1_500.0,
        "pair latencies {a} vs {b} ns diverge"
    );
}

//! Property-based tests over the core invariants (proptest).

use itb_myrinet::routing::deadlock::ChannelDepGraph;
use itb_myrinet::routing::metrics::route_links;
use itb_myrinet::routing::planner::{ItbHostSelection, ItbPlanner};
use itb_myrinet::routing::updown::{min_crossings, shortest_updown};
use itb_myrinet::routing::wire::{decode_segments, Header};
use itb_myrinet::routing::{RouteTable, RoutingPolicy};
use itb_myrinet::topo::builders::{random_irregular, ring, IrregularSpec};
use itb_myrinet::topo::updown::Direction;
use itb_myrinet::topo::{HostId, Topology, UpDown};
use proptest::prelude::*;

/// Strategy: a connected irregular network spec.
fn net_spec() -> impl Strategy<Value = (usize, u64)> {
    (4usize..=14, any::<u64>())
}

/// Check a route's segments all obey the up*/down* rule.
fn segments_updown_legal(
    topo: &Topology,
    ud: &UpDown,
    r: &itb_myrinet::routing::SourceRoute,
) -> bool {
    for seg in &r.segments {
        let mut last: Option<Direction> = None;
        for hop in &seg.hops[..seg.hops.len() - 1] {
            let link = topo.link_at(hop.switch, hop.out_port).unwrap();
            let dir = ud.direction_from(topo, link, hop.switch, hop.out_port);
            if last == Some(Direction::Down) && dir == Direction::Up {
                return false;
            }
            last = Some(dir);
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every up*/down* route on every random network is legal, wired, and at
    /// least as long as the true shortest path.
    #[test]
    fn updown_routes_always_legal((switches, seed) in net_spec()) {
        let topo = random_irregular(&IrregularSpec::evaluation_default(switches, seed));
        let ud = UpDown::compute_default(&topo);
        let hosts: Vec<_> = topo.host_ids().collect();
        for &a in hosts.iter().step_by(5) {
            for &b in hosts.iter().step_by(7) {
                if a == b { continue; }
                let r = shortest_updown(&topo, &ud, a, b).expect("connected");
                prop_assert!(r.is_well_formed(&topo));
                prop_assert!(segments_updown_legal(&topo, &ud, &r));
                let min = min_crossings(&topo, a, b).unwrap();
                prop_assert!(r.total_crossings() >= min);
            }
        }
    }

    /// The ITB planner always yields minimal routes (every switch has
    /// hosts), split into legal segments, never longer than up*/down*.
    #[test]
    fn planner_routes_minimal_and_legal((switches, seed) in net_spec()) {
        let topo = random_irregular(&IrregularSpec::evaluation_default(switches, seed));
        let ud = UpDown::compute_default(&topo);
        let mut planner = ItbPlanner::new(ItbHostSelection::First);
        let hosts: Vec<_> = topo.host_ids().collect();
        for &a in hosts.iter().step_by(6) {
            for &b in hosts.iter().step_by(9) {
                if a == b { continue; }
                let r = planner.route(&topo, &ud, a, b).unwrap();
                prop_assert!(r.is_well_formed(&topo));
                prop_assert!(segments_updown_legal(&topo, &ud, &r));
                let min_links = min_crossings(&topo, a, b).unwrap() - 1;
                prop_assert_eq!(route_links(&r), min_links);
                prop_assert_eq!(r.total_crossings(), min_links + 1 + r.itb_count());
            }
        }
    }

    /// Both policies' full route tables induce acyclic channel-dependency
    /// graphs — deadlock freedom, the paper's correctness cornerstone.
    #[test]
    fn route_tables_deadlock_free((switches, seed) in (4usize..=10, any::<u64>())) {
        let topo = random_irregular(&IrregularSpec::evaluation_default(switches, seed));
        let ud = UpDown::compute_default(&topo);
        for policy in [RoutingPolicy::UpDown, RoutingPolicy::Itb] {
            let table = RouteTable::compute(&topo, &ud, policy).unwrap();
            let cdg = ChannelDepGraph::build(&topo, table.iter());
            prop_assert!(cdg.is_acyclic(), "{policy:?} CDG cyclic on seed {seed}");
        }
    }

    /// Header encoding round-trips for arbitrary multi-segment routes on a
    /// ring (the planner gives both 0-ITB and k-ITB routes there).
    #[test]
    fn headers_roundtrip(n in 4usize..=12, a in 0u16..12, b in 0u16..12) {
        let n_u16 = n as u16;
        let (a, b) = (a % n_u16, b % n_u16);
        prop_assume!(a != b);
        let topo = ring(n, 1);
        let ud = UpDown::compute_default(&topo);
        let mut planner = ItbPlanner::new(ItbHostSelection::First);
        let r = planner.route(&topo, &ud, HostId(a), HostId(b)).unwrap();
        let h = Header::encode(&r);
        let segs = decode_segments(&h).expect("encoded headers decode");
        prop_assert_eq!(segs.len(), r.segments.len());
        for (enc, seg) in segs.iter().zip(&r.segments) {
            let ports: Vec<_> = seg.hops.iter().map(|hop| hop.out_port).collect();
            prop_assert_eq!(enc, &ports);
        }
    }

    /// Up*/down* orientation: following only Up-direction links never
    /// cycles (the spanning-tree argument).
    #[test]
    fn up_direction_subgraph_acyclic((switches, seed) in net_spec()) {
        let topo = random_irregular(&IrregularSpec::evaluation_default(switches, seed));
        let ud = UpDown::compute_default(&topo);
        let n = topo.num_switches();
        let mut indeg = vec![0usize; n];
        let mut adj: Vec<Vec<usize>> = vec![vec![]; n];
        for lid in topo.link_ids() {
            let Some(up) = ud.up_switch(lid) else { continue };
            let l = topo.link(lid);
            if l.is_self_loop() { continue; }
            let a = l.a.node.as_switch().unwrap();
            let b = l.b.node.as_switch().unwrap();
            let down = if a == up { b } else { a };
            adj[down.idx()].push(up.idx());
            indeg[up.idx()] += 1;
        }
        let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut removed = 0;
        while let Some(v) = stack.pop() {
            removed += 1;
            for &w in &adj[v] {
                indeg[w] -= 1;
                if indeg[w] == 0 { stack.push(w); }
            }
        }
        prop_assert_eq!(removed, n);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// End-to-end delivery: random small traffic on a random network is
    /// delivered exactly once with matching lengths, under both policies.
    #[test]
    fn traffic_delivered_exactly_once(seed in any::<u64>(), policy_itb in any::<bool>()) {
        use itb_myrinet::core::ClusterSpec;
        use itb_myrinet::gm::AppBehavior;
        use itb_myrinet::sim::{run_until, EventQueue, SimDuration, SimTime};

        let policy = if policy_itb { RoutingPolicy::Itb } else { RoutingPolicy::UpDown };
        let spec = ClusterSpec::irregular(6, seed).with_routing(policy);
        let n = spec.num_hosts();
        let behaviors = vec![AppBehavior::Poisson {
            size: 256,
            mean_gap: SimDuration::from_us(80),
            limit: 4,
        }; n];
        let mut cluster = spec.build(behaviors);
        let mut q = EventQueue::new();
        cluster.start(&mut q);
        run_until(&mut cluster, &mut q, SimTime::from_ms(60));
        prop_assert_eq!(cluster.messages().len(), n * 4);
        for rec in cluster.messages().values() {
            prop_assert!(rec.delivered_at.is_some(), "lost message {rec:?}");
            prop_assert!(rec.delivered_at.unwrap() > rec.sent_at);
            prop_assert_eq!(rec.len, 256);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The mapper reconstructs any random fabric faithfully: counts match
    /// and routes computed from the reconstruction are wired on the real
    /// network.
    #[test]
    fn mapper_reconstruction_is_faithful((switches, seed) in (4usize..=10, any::<u64>())) {
        use itb_myrinet::gm::mapper::map_fabric;

        let fabric = random_irregular(&IrregularSpec::evaluation_default(switches, seed));
        let mapper_host = HostId(0);
        let map = map_fabric(&fabric, mapper_host);
        prop_assert_eq!(map.switches.len(), fabric.num_switches());
        prop_assert_eq!(map.hosts.len(), fabric.num_hosts());
        let rec = map.to_topology();
        prop_assert_eq!(rec.num_links(), fabric.num_links());
        let table = map.compute_routes(RoutingPolicy::Itb);
        for r in table.iter() {
            prop_assert!(r.is_well_formed(&fabric));
        }
    }

    /// The wire header of any planner route decodes back to its hop lists,
    /// regardless of how many ITBs the route needs.
    #[test]
    fn random_network_headers_roundtrip((switches, seed) in (4usize..=10, any::<u64>())) {
        use itb_myrinet::routing::wire::{decode_segments, Header};

        let topo = random_irregular(&IrregularSpec::evaluation_default(switches, seed));
        let ud = UpDown::compute_default(&topo);
        let mut planner = ItbPlanner::new(ItbHostSelection::RoundRobin);
        let hosts: Vec<_> = topo.host_ids().collect();
        for &a in hosts.iter().step_by(7) {
            for &b in hosts.iter().step_by(11) {
                if a == b { continue; }
                let r = planner.route(&topo, &ud, a, b).unwrap();
                let h = Header::encode(&r);
                let segs = decode_segments(&h).expect("decodes");
                prop_assert_eq!(segs.len(), r.segments.len());
            }
        }
    }
}

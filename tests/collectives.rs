//! Collective-pattern integration tests, including the regression test for
//! the in-transit forwarding order race.

use itb_myrinet::core::experiments::permutation_exchange;
use itb_myrinet::core::{ClusterSpec, RoutingPolicy};
use itb_myrinet::topo::HostId;

#[test]
fn itb_forwarding_preserves_flow_order_under_load() {
    // Regression: a newly detected in-transit packet must queue behind
    // packets already on the ITB-pending flag. Before the fix, a packet
    // arriving in the window where the send DMA was idle but a pending
    // packet's reprogramming handler was still on the CPU would jump the
    // queue, reordering a flow and forcing go-back-N timeouts: this
    // permutation exchange took 2 full retransmission timeouts (> 2 s
    // simulated) instead of < 1 ms.
    let spec = ClusterSpec::irregular(16, 1).with_routing(RoutingPolicy::Itb);
    let result = permutation_exchange(&spec, 512, 16, 1_000);
    assert_eq!(result.messages, 64 * 16);
    assert!(
        result.makespan_us < 5_000.0,
        "exchange should finish in ~0.6 ms, took {} us (reordering regression?)",
        result.makespan_us
    );
}

#[test]
fn permutation_exchange_has_no_retransmissions() {
    // Same scenario, checked at the protocol level: a loss-free fabric must
    // complete the exchange without a single retransmission.
    let spec = ClusterSpec::irregular(16, 2).with_routing(RoutingPolicy::Itb);
    let mut spec2 = spec.clone();
    spec2.calib.gm.reliability = true;
    spec2.calib.gm.retrans_timeout = itb_myrinet::sim::SimDuration::from_ms(250);
    let n = spec2.num_hosts();
    let behaviors: Vec<_> = (0..n)
        .map(|i| itb_myrinet::gm::AppBehavior::Stream {
            dst: HostId(((i + n / 2) % n) as u16),
            size: 512,
            count: 12,
        })
        .collect();
    let mut cluster = spec2.build(behaviors);
    let mut q = itb_myrinet::sim::EventQueue::new();
    cluster.start(&mut q);
    itb_myrinet::sim::run_while(&mut cluster, &mut q, |c| c.delivered_count() < n * 12);
    assert_eq!(cluster.delivered_count(), n * 12);
    let retrans: u64 = (0..n as u16)
        .map(|h| {
            cluster
                .host(HostId(h))
                .tx
                .iter()
                .map(|t| t.retransmissions)
                .sum::<u64>()
        })
        .sum();
    assert_eq!(retrans, 0, "loss-free fabric must not retransmit");
    // In-order delivery at every receiver: no duplicates recorded.
    for h in 0..n as u16 {
        for conn in &cluster.host(HostId(h)).rx {
            assert_eq!(conn.duplicates, 0);
        }
    }
}
